#pragma once

/**
 * @file
 * Tensor-Core-style mma micro kernel (§V-B, "GPU Micro Kernels"),
 * emulated on the host.
 *
 * The unit operation is the WMMA-shaped 16x16x16 fragment multiply
 *     C_frag[16,16] += A_frag[16,16] * B_frag[16,16].
 * Issuing one load per mma gives arithmetic intensity too low to feed
 * the units, so the paper's kernel unrolls a 2x2 tile of C fragments
 * and reuses each loaded A/B fragment twice. Both variants are
 * implemented here so the AI improvement is observable (counted
 * fragment loads per mma), and the tiled kernel is validated against
 * the reference GEMM.
 */

#include <cstdint>

#include "tensor/tensor.hpp"

namespace chimera::kernels {

/** WMMA fragment edge. */
inline constexpr int kMmaDim = 16;

/** One fragment multiply: c += a * b on 16x16 row-major fragments. */
void mmaSync(const float *aFrag, const float *bFrag, float *cFrag);

/** Statistics of one emulated-GPU matmul. */
struct MmaStats
{
    std::int64_t mmaOps = 0;
    std::int64_t fragmentLoads = 0;

    /** mma issued per fragment loaded: 0.5 naive, 1.0 with 2x2 tiles. */
    double
    opsPerLoad() const
    {
        return fragmentLoads == 0
                   ? 0.0
                   : static_cast<double>(mmaOps) /
                         static_cast<double>(fragmentLoads);
    }
};

/**
 * C = A x B using one mma per fragment pair (the naive schedule the
 * paper rejects). Dimensions must be multiples of 16.
 */
MmaStats mmaMatmulNaive(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * C = A x B with the paper's 2x2 C-tile schedule: two A fragments and
 * two B fragments are loaded per step and each is reused twice.
 * Dimensions must be multiples of 32.
 */
MmaStats mmaMatmulTiled(const Tensor &a, const Tensor &b, Tensor &c);

} // namespace chimera::kernels
