#pragma once

/**
 * @file
 * NPU cube-unit micro kernel semantics (§V-B, "NPU Micro Kernels").
 *
 * The Ascend `mad` pragma expects six nested loops over packed operands:
 *     C[m1, n1, m2, n2] += A[m1, k1, m2, k2] * B[k1, n1, n2, k2]
 * with the inner block shapes m2/n2/k2 equal to the cube-unit lane
 * count. This module implements that computation bit-exactly on the
 * host (the emulated backend of DESIGN.md §2), the packing from
 * row-major matrices into the fractal layout, and the §V-B arithmetic
 * intensity optimization
 *     AI = (M1*M2*N1*N2) / (M1*M2 + N1*N2)
 * maximized by M2 = N2 = lanes and M1 = N1 sized to the L0 buffers.
 */

#include <cstdint>

#include "tensor/tensor.hpp"

namespace chimera::kernels {

/** Blocking of one mad invocation. */
struct MadShape
{
    int m1 = 1;
    int n1 = 1;
    int k1 = 1;
    int m2 = 16; ///< cube-unit lanes
    int n2 = 16;
    int k2 = 16;

    std::int64_t rows() const { return std::int64_t{1} * m1 * m2; }
    std::int64_t cols() const { return std::int64_t{1} * n1 * n2; }
    std::int64_t depth() const { return std::int64_t{1} * k1 * k2; }
};

/**
 * Packs a row-major A block (rows x depth) into the fractal layout
 * A[m1][k1][m2][k2]; regions beyond @p rows/@p depth are zero.
 */
void packMadA(const float *a, std::int64_t lda, std::int64_t rows,
              std::int64_t depth, const MadShape &shape, float *dst);

/**
 * Packs a row-major B block (depth x cols) into B[k1][n1][n2][k2];
 * note the transposed innermost pair, as the cube unit expects.
 */
void packMadB(const float *b, std::int64_t ldb, std::int64_t depth,
              std::int64_t cols, const MadShape &shape, float *dst);

/**
 * The mad computation: C[m1][n1][m2][n2] += A * B over packed inputs.
 */
void madCompute(const float *aPack, const float *bPack, float *cPack,
                const MadShape &shape);

/** Unpacks C[m1][n1][m2][n2] into a row-major (rows x cols) block. */
void unpackMadC(const float *cPack, const MadShape &shape, float *c,
                std::int64_t ldc, std::int64_t rows, std::int64_t cols);

/**
 * Full emulated cube-unit matmul C = A x B on row-major tensors,
 * blocking with @p shape per invocation. Used by tests to validate the
 * fractal layouts against the reference GEMM.
 */
void madMatmul(const Tensor &a, const Tensor &b, Tensor &c,
               const MadShape &shape);

/** AI of one mad invocation per §V-B. */
double madArithmeticIntensity(const MadShape &shape);

/**
 * §V-B parameter choice: M2 = N2 = lanes and M1 = N1 maximal such that
 * the packed A and B blocks fit the L0A/L0B capacities.
 */
MadShape selectMadShape(int lanes, std::int64_t l0aBytes,
                        std::int64_t l0bBytes, int k1 = 1);

} // namespace chimera::kernels
