#pragma once

/**
 * @file
 * Replaceable micro kernels (§V-A).
 *
 * A replaceable micro kernel is the abstraction of one computation
 * block's innermost matrix-multiply: semantically a naive loop nest
 *     C[m, n] += sum_k A[k, m] * B[k, n]   (packed operands)
 * for an MR x NR register tile. Hardware-specific implementations
 * (scalar, AVX2 FMA, AVX-512 per Algorithm 2) are *registered* under
 * this abstraction and the widest implementation supported by the
 * running CPU is selected at plan execution time — the CPU instance of
 * the paper's per-backend kernel substitution.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/cpu_features.hpp"

namespace chimera::kernels {

/**
 * Computes C[MR x NR] += Apack^T * Bpack over kc steps.
 *
 * @param aPack Packed A panel, layout aPack[k*MR + m].
 * @param bPack Packed B panel, layout bPack[k*NR + n].
 * @param c     Output tile base pointer; element (m, n) at c[m*ldc + n].
 * @param ldc   Row stride of C in elements.
 * @param kc    Reduction depth (KI in Algorithm 2), >= 1.
 */
using MicroKernelFn = void (*)(const float *aPack, const float *bPack,
                               float *c, std::int64_t ldc, int kc);

/** One registered low-level implementation. */
struct MicroKernel
{
    std::string name;
    SimdTier tier = SimdTier::Scalar;

    /** Register tile rows (MI of Algorithm 2). */
    int mr = 0;

    /** Register tile columns in elements (NI * vector lanes). */
    int nr = 0;

    MicroKernelFn fn = nullptr;
};

/**
 * Registry mapping the replaceable micro kernel to its registered
 * implementations, mirroring Figure 4's per-device registration.
 */
class MicroKernelRegistry
{
  public:
    /** The process-wide registry with all built-ins registered. */
    static const MicroKernelRegistry &instance();

    /** Registry with only built-ins up to the compiled ISA. */
    MicroKernelRegistry();

    /** Registers an additional implementation. */
    void add(const MicroKernel &kernel);

    /** All registered implementations. */
    const std::vector<MicroKernel> &kernels() const { return kernels_; }

    /**
     * Selects the widest implementation whose tier does not exceed
     * @p maxTier. The scalar kernel is always available.
     */
    const MicroKernel &select(SimdTier maxTier) const;

    /** Selects by exact name; throws Error when absent. */
    const MicroKernel &byName(const std::string &name) const;

  private:
    std::vector<MicroKernel> kernels_;
};

/** The portable reference implementation (also the high-level spec). */
void scalarMicroKernel(const float *aPack, const float *bPack, float *c,
                       std::int64_t ldc, int kc);

/** Scalar kernel register-tile shape. */
inline constexpr int kScalarMr = 6;
inline constexpr int kScalarNr = 16;

} // namespace chimera::kernels
