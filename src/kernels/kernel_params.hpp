#pragma once

/**
 * @file
 * Analytical micro-kernel parameter selection (§V-B).
 *
 * The paper chooses the CPU kernel's register tile (MI, NI, MII) by
 * maximizing arithmetic intensity
 *     AI = #ComputeInst / #LoadStoreInst
 *        = (MI*NI*KI) / (KI*(MI+NI) + 2*MI*NI)
 * subject to the register budget
 *     RegUsed = MI*NI + NI + MII <= #Registers.
 * Additional structural constraints from Algorithm 2: MII divides MI
 * (the mo loop steps by MII) and MII >= 2 (at least two in-flight A
 * broadcasts to hide load latency). For CascadeLake's 32 ZMM registers
 * this selects (6, 4, 2), matching the paper.
 */

namespace chimera::kernels {

/** Selected register-tile parameters of Algorithm 2. */
struct CpuKernelParams
{
    int mi = 0; ///< Rows of the register tile.
    int ni = 0; ///< Columns in vector registers.
    int mii = 0; ///< A-broadcast group size.

    /** AI in the KI -> infinity limit: MI*NI / (MI+NI). */
    double arithmeticIntensity = 0.0;

    /** MI*NI + NI + MII. */
    int registersUsed = 0;
};

/** AI for finite KI per the paper's formula. */
double kernelArithmeticIntensity(int mi, int ni, int ki);

/**
 * Maximizes AI under the register budget.
 *
 * @param numRegisters Architectural vector registers (32 for AVX-512,
 *                     16 for AVX2).
 */
CpuKernelParams selectCpuKernelParams(int numRegisters);

} // namespace chimera::kernels
