#include "kernels/block_matmul.hpp"

#include <algorithm>
#include <cstring>

#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace chimera::kernels {

namespace {

float *
ensureCapacity(AlignedBuffer<float> &buffer, std::size_t &capacity,
               std::size_t elems)
{
    if (elems > capacity) {
        buffer = allocateAligned<float>(elems);
        capacity = elems;
    }
    return buffer.get();
}

} // namespace

float *
Workspace::ensureA(std::size_t elems)
{
    return ensureCapacity(a_, aCap_, elems);
}

float *
Workspace::ensureB(std::size_t elems)
{
    return ensureCapacity(b_, bCap_, elems);
}

float *
Workspace::ensureScratch(std::size_t elems)
{
    return ensureCapacity(scratch_, scratchCap_, elems);
}

void
packAPanel(const float *a, std::int64_t lda, int rows, std::int64_t kc,
           int mr, float *dst)
{
    CHIMERA_ASSERT(rows >= 1 && rows <= mr, "bad A panel rows");
    for (std::int64_t k = 0; k < kc; ++k) {
        float *out = dst + k * mr;
        for (int m = 0; m < rows; ++m) {
            out[m] = a[static_cast<std::int64_t>(m) * lda + k];
        }
        for (int m = rows; m < mr; ++m) {
            out[m] = 0.0f;
        }
    }
}

void
packBPanel(const float *b, std::int64_t ldb, std::int64_t kc, int cols,
           int nr, float *dst)
{
    CHIMERA_ASSERT(cols >= 1 && cols <= nr, "bad B panel cols");
    for (std::int64_t k = 0; k < kc; ++k) {
        float *out = dst + k * nr;
        const float *src = b + k * ldb;
        std::memcpy(out, src, static_cast<std::size_t>(cols) *
                                  sizeof(float));
        for (int n = cols; n < nr; ++n) {
            out[n] = 0.0f;
        }
    }
}

void
blockMatmul(const MicroKernel &kernel, const float *a, std::int64_t lda,
            const float *b, std::int64_t ldb, float *c, std::int64_t ldc,
            std::int64_t m, std::int64_t n, std::int64_t k,
            Workspace &workspace)
{
    CHIMERA_ASSERT(m >= 1 && n >= 1 && k >= 1, "empty block");
    const int mr = kernel.mr;
    const int nr = kernel.nr;
    const std::int64_t mPanels = ceilDiv(m, mr);
    const std::int64_t nPanels = ceilDiv(n, nr);

    // Pack all B panels once: bPack[panel][k][nr].
    const std::size_t bPanelElems =
        static_cast<std::size_t>(k) * static_cast<std::size_t>(nr);
    float *bPack = workspace.ensureB(bPanelElems *
                                     static_cast<std::size_t>(nPanels));
    for (std::int64_t np = 0; np < nPanels; ++np) {
        const std::int64_t col0 = np * nr;
        const int cols = static_cast<int>(std::min<std::int64_t>(
            nr, n - col0));
        packBPanel(b + col0, ldb, k, cols, nr,
                   bPack + static_cast<std::size_t>(np) * bPanelElems);
    }

    float *aPack = workspace.ensureA(static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(mr));
    float *scratch = workspace.ensureScratch(
        static_cast<std::size_t>(mr) * static_cast<std::size_t>(nr));

    for (std::int64_t mp = 0; mp < mPanels; ++mp) {
        const std::int64_t row0 = mp * mr;
        const int rows = static_cast<int>(std::min<std::int64_t>(
            mr, m - row0));
        packAPanel(a + row0 * lda, lda, rows, k, mr, aPack);
        for (std::int64_t np = 0; np < nPanels; ++np) {
            const std::int64_t col0 = np * nr;
            const int cols = static_cast<int>(std::min<std::int64_t>(
                nr, n - col0));
            float *cTile = c + row0 * ldc + col0;
            const float *bPanel =
                bPack + static_cast<std::size_t>(np) * bPanelElems;
            if (rows == mr && cols == nr) {
                kernel.fn(aPack, bPanel, cTile, ldc, static_cast<int>(k));
            } else {
                std::memset(scratch, 0,
                            static_cast<std::size_t>(mr) *
                                static_cast<std::size_t>(nr) *
                                sizeof(float));
                kernel.fn(aPack, bPanel, scratch, nr, static_cast<int>(k));
                for (int r = 0; r < rows; ++r) {
                    const float *src = scratch + r * nr;
                    float *dst = cTile + static_cast<std::int64_t>(r) * ldc;
                    for (int col = 0; col < cols; ++col) {
                        dst[col] += src[col];
                    }
                }
            }
        }
    }
}

void
naiveBlockMatmul(const float *a, std::int64_t lda, const float *b,
                 std::int64_t ldb, float *c, std::int64_t ldc,
                 std::int64_t m, std::int64_t n, std::int64_t k)
{
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t p = 0; p < k; ++p) {
            const float av = a[i * lda + p];
            const float *brow = b + p * ldb;
            float *crow = c + i * ldc;
            for (std::int64_t j = 0; j < n; ++j) {
                crow[j] += av * brow[j];
            }
        }
    }
}

} // namespace chimera::kernels
