#include "kernels/mma_tile.hpp"

#include <cstring>
#include <vector>

#include "support/error.hpp"

namespace chimera::kernels {

void
mmaSync(const float *aFrag, const float *bFrag, float *cFrag)
{
    for (int i = 0; i < kMmaDim; ++i) {
        for (int j = 0; j < kMmaDim; ++j) {
            float acc = cFrag[i * kMmaDim + j];
            for (int k = 0; k < kMmaDim; ++k) {
                acc += aFrag[i * kMmaDim + k] * bFrag[k * kMmaDim + j];
            }
            cFrag[i * kMmaDim + j] = acc;
        }
    }
}

namespace {

/** Copies a 16x16 fragment out of a row-major matrix. */
void
loadFragment(const float *src, std::int64_t ld, float *frag)
{
    for (int i = 0; i < kMmaDim; ++i) {
        std::memcpy(frag + i * kMmaDim, src + i * ld,
                    kMmaDim * sizeof(float));
    }
}

void
storeFragment(const float *frag, float *dst, std::int64_t ld)
{
    for (int i = 0; i < kMmaDim; ++i) {
        std::memcpy(dst + i * ld, frag + i * kMmaDim,
                    kMmaDim * sizeof(float));
    }
}

void
checkShapes(const Tensor &a, const Tensor &b, const Tensor &c,
            int multiple)
{
    CHIMERA_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
                  "mma matmul expects rank-2 tensors");
    CHIMERA_CHECK(a.shape()[1] == b.shape()[0] &&
                      c.shape()[0] == a.shape()[0] &&
                      c.shape()[1] == b.shape()[1],
                  "mma matmul shape mismatch");
    for (std::int64_t dim :
         {a.shape()[0], a.shape()[1], b.shape()[1]}) {
        CHIMERA_CHECK(dim % multiple == 0,
                      "mma matmul dimensions must be fragment-aligned");
    }
}

} // namespace

MmaStats
mmaMatmulNaive(const Tensor &a, const Tensor &b, Tensor &c)
{
    checkShapes(a, b, c, kMmaDim);
    const std::int64_t m = a.shape()[0];
    const std::int64_t k = a.shape()[1];
    const std::int64_t n = b.shape()[1];
    c.zero();

    MmaStats stats;
    std::vector<float> aFrag(kMmaDim * kMmaDim);
    std::vector<float> bFrag(kMmaDim * kMmaDim);
    std::vector<float> cFrag(kMmaDim * kMmaDim);
    for (std::int64_t i = 0; i < m; i += kMmaDim) {
        for (std::int64_t j = 0; j < n; j += kMmaDim) {
            loadFragment(c.data() + i * n + j, n, cFrag.data());
            for (std::int64_t p = 0; p < k; p += kMmaDim) {
                // One A load + one B load per mma: AI-poor (§V-B).
                loadFragment(a.data() + i * k + p, k, aFrag.data());
                loadFragment(b.data() + p * n + j, n, bFrag.data());
                stats.fragmentLoads += 2;
                mmaSync(aFrag.data(), bFrag.data(), cFrag.data());
                stats.mmaOps += 1;
            }
            storeFragment(cFrag.data(), c.data() + i * n + j, n);
        }
    }
    return stats;
}

MmaStats
mmaMatmulTiled(const Tensor &a, const Tensor &b, Tensor &c)
{
    checkShapes(a, b, c, 2 * kMmaDim);
    const std::int64_t m = a.shape()[0];
    const std::int64_t k = a.shape()[1];
    const std::int64_t n = b.shape()[1];
    c.zero();

    MmaStats stats;
    std::vector<float> aFrag[2];
    std::vector<float> bFrag[2];
    std::vector<float> cFrag[2][2];
    for (int i = 0; i < 2; ++i) {
        aFrag[i].resize(kMmaDim * kMmaDim);
        bFrag[i].resize(kMmaDim * kMmaDim);
        for (int j = 0; j < 2; ++j) {
            cFrag[i][j].resize(kMmaDim * kMmaDim);
        }
    }

    for (std::int64_t i = 0; i < m; i += 2 * kMmaDim) {
        for (std::int64_t j = 0; j < n; j += 2 * kMmaDim) {
            for (int ti = 0; ti < 2; ++ti) {
                for (int tj = 0; tj < 2; ++tj) {
                    loadFragment(c.data() + (i + ti * kMmaDim) * n + j +
                                     tj * kMmaDim,
                                 n, cFrag[ti][tj].data());
                }
            }
            for (std::int64_t p = 0; p < k; p += kMmaDim) {
                // Two A and two B fragments feed four mma ops: each
                // loaded fragment is reused twice (§V-B).
                for (int t = 0; t < 2; ++t) {
                    loadFragment(a.data() + (i + t * kMmaDim) * k + p, k,
                                 aFrag[t].data());
                    loadFragment(b.data() + p * n + j + t * kMmaDim, n,
                                 bFrag[t].data());
                    stats.fragmentLoads += 2;
                }
                for (int ti = 0; ti < 2; ++ti) {
                    for (int tj = 0; tj < 2; ++tj) {
                        mmaSync(aFrag[ti].data(), bFrag[tj].data(),
                                cFrag[ti][tj].data());
                        stats.mmaOps += 1;
                    }
                }
            }
            for (int ti = 0; ti < 2; ++ti) {
                for (int tj = 0; tj < 2; ++tj) {
                    storeFragment(cFrag[ti][tj].data(),
                                  c.data() + (i + ti * kMmaDim) * n + j +
                                      tj * kMmaDim,
                                  n);
                }
            }
        }
    }
    return stats;
}

} // namespace chimera::kernels
