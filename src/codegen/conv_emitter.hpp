#pragma once

/**
 * @file
 * C source emitter for fused convolution chains: the conv counterpart
 * of c_emitter.hpp. Emits a standalone C translation unit with the
 * planned region structure — per (b, oc1, oh, ow) region the producer
 * convolution fills a halo-inflated on-chip buffer, the optional ReLU
 * applies in place, and the consumer convolution drains it for every
 * oc2 block — plus an optional self-test main.
 *
 * The generated kernel favours auditability over speed (plain loop
 * nests; the comment block marks where registered micro kernels replace
 * the inner loops during real code generation).
 */

#include <string>

#include "ir/builders.hpp"
#include "plan/planner.hpp"

namespace chimera::codegen {

/** Emitter knobs (mirrors EmitOptions of the GEMM emitter). */
struct ConvEmitOptions
{
    bool emitSelfTestMain = true;
    std::string kernelName = "chimera_fused_conv_chain";
};

/** Emits the fused conv-chain kernel for @p plan as C99 source. */
std::string emitConvChainC(const ir::ConvChainConfig &config,
                           const plan::ExecutionPlan &plan,
                           const ConvEmitOptions &options = {});

/** Oracle checksum matching the generated self-test main. */
double convSelfTestChecksum(const ir::ConvChainConfig &config);

} // namespace chimera::codegen
