#pragma once

/**
 * @file
 * C source emitter: the tangible "code generation" stage of Figure 3.
 *
 * Given a GEMM-chain configuration and an execution plan, emits a
 * standalone C translation unit containing
 *  - the replaceable micro kernel lowered for the target (a scalar
 *    reference implementation plus an AVX-512 implementation selected
 *    by the preprocessor, mirroring Figure 4's per-device registration),
 *  - the fused loop nest walking the planned block order with the
 *    planned tile sizes baked in as constants, and
 *  - optionally a self-test main() that fills the inputs with a
 *    deterministic pattern and prints an output checksum, so the
 *    generated kernel can be compiled and validated end to end.
 */

#include <string>

#include "ir/builders.hpp"
#include "plan/planner.hpp"

namespace chimera::codegen {

/** Emitter knobs. */
struct EmitOptions
{
    /** Emit a main() that self-tests the kernel and prints a checksum. */
    bool emitSelfTestMain = true;

    /** Function name of the generated kernel. */
    std::string kernelName = "chimera_fused_gemm_chain";
};

/**
 * Emits the fused kernel for a batch GEMM chain under @p plan.
 * The generated unit compiles with any C99 compiler; compiling with
 * -mavx512f activates the wide micro kernel.
 */
std::string emitGemmChainC(const ir::GemmChainConfig &config,
                           const plan::ExecutionPlan &plan,
                           const EmitOptions &options = {});

/**
 * Deterministic checksum matching the generated self-test main: the sum
 * over E of E[i] * ((i % 7) + 1) with fillPattern inputs. Tests compare
 * this against the checksum printed by the compiled artifact.
 */
double selfTestChecksum(const ir::GemmChainConfig &config);

} // namespace chimera::codegen
