#include "support/aligned.hpp"

#include <cstdlib>
#include <new>

#include "support/mathutil.hpp"

namespace chimera {
namespace detail {

void *
alignedAllocBytes(std::size_t bytes)
{
    if (bytes == 0) {
        bytes = kBufferAlignment;
    }
    // std::aligned_alloc requires the size to be a multiple of alignment.
    const std::size_t padded = static_cast<std::size_t>(
        roundUp(static_cast<std::int64_t>(bytes),
                static_cast<std::int64_t>(kBufferAlignment)));
    void *p = std::aligned_alloc(kBufferAlignment, padded);
    if (p == nullptr) {
        throw std::bad_alloc();
    }
    return p;
}

void
AlignedDeleter::operator()(void *p) const noexcept
{
    std::free(p);
}

} // namespace detail
} // namespace chimera
