#pragma once

/**
 * @file
 * Minimal leveled logger.
 *
 * Chimera components log planner decisions at Debug, notable events at
 * Info, and degraded-but-continuing conditions at Warn (mirroring gem5's
 * inform()/warn() guidance). The default level is Warn so library users
 * see nothing unless something is off.
 */

#include <sstream>
#include <string>

namespace chimera {

/** Severity levels, in increasing order of importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

/** Returns the current global log threshold. */
LogLevel logLevel();

/** Sets the global log threshold. Messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Emits one log line to stderr if @p level passes the threshold. */
void logMessage(LogLevel level, const std::string &message);

} // namespace chimera

#define CHIMERA_LOG_AT(level, streamed)                                      \
    do {                                                                     \
        if (static_cast<int>(level) >=                                       \
            static_cast<int>(::chimera::logLevel())) {                       \
            std::ostringstream chimera_log_oss_;                             \
            chimera_log_oss_ << streamed;                                    \
            ::chimera::logMessage(level, chimera_log_oss_.str());            \
        }                                                                    \
    } while (false)

/** Logs planner internals (permutation scores, tile candidates, ...). */
#define CHIMERA_DEBUG(streamed)                                              \
    CHIMERA_LOG_AT(::chimera::LogLevel::Debug, streamed)

/** Logs notable but expected events. */
#define CHIMERA_INFO(streamed)                                               \
    CHIMERA_LOG_AT(::chimera::LogLevel::Info, streamed)

/** Logs degraded-but-continuing conditions. */
#define CHIMERA_WARN(streamed)                                               \
    CHIMERA_LOG_AT(::chimera::LogLevel::Warn, streamed)
