#pragma once

/**
 * @file
 * Cache-line / SIMD aligned heap allocation with RAII ownership.
 */

#include <cstddef>
#include <memory>

namespace chimera {

/** Alignment used for all tensor and packing buffers (one AVX-512 lane). */
inline constexpr std::size_t kBufferAlignment = 64;

namespace detail {

/** Deleter matching alignedAllocBytes. */
struct AlignedDeleter
{
    void operator()(void *p) const noexcept;
};

/** Allocates @p bytes with kBufferAlignment; throws std::bad_alloc. */
void *alignedAllocBytes(std::size_t bytes);

} // namespace detail

/** Owning pointer to an aligned, uninitialized array of T. */
template <typename T>
using AlignedBuffer = std::unique_ptr<T[], detail::AlignedDeleter>;

/**
 * Allocates an aligned, uninitialized array of @p count elements of T.
 * T must be trivially destructible (the deleter only frees memory).
 */
template <typename T>
AlignedBuffer<T>
allocateAligned(std::size_t count)
{
    static_assert(std::is_trivially_destructible_v<T>,
                  "AlignedBuffer only supports trivially destructible types");
    return AlignedBuffer<T>(
        static_cast<T *>(detail::alignedAllocBytes(count * sizeof(T))));
}

} // namespace chimera
