#pragma once

/**
 * @file
 * Persistent worker-thread pool with a statically chunked parallelFor.
 *
 * The executors and the inter-block planner only parallelize loops whose
 * iterations are fully independent (disjoint output regions, candidate
 * permutations), so the pool stays deliberately simple: a parallelFor
 * splits [begin, end) into one contiguous chunk per worker, the calling
 * thread executes chunk 0, and the first exception thrown by any worker
 * (lowest worker index wins, deterministically) is rethrown to the
 * caller once every chunk has finished.
 *
 * Thread-count policy, in decreasing precedence:
 *  1. an explicit count handed to the constructor / withSize(),
 *  2. the CHIMERA_THREADS environment variable,
 *  3. std::thread::hardware_concurrency().
 * A resolved count of 1 degenerates to plain serial execution on the
 * calling thread (no worker threads are spawned, exceptions propagate
 * directly).
 *
 * Setting CHIMERA_AFFINITY=1 (Linux only) pins each spawned worker
 * thread w to hardware thread w % hardware_concurrency at startup —
 * compact placement so a worker's private L1/L2 working set is not
 * migrated mid-chain. The calling thread (worker 0) is never pinned.
 */

#include <cstdint>
#include <functional>
#include <memory>

namespace chimera {

/** Hardware thread count; at least 1 even when detection fails. */
int hardwareThreadCount();

/**
 * Threads to use when no explicit count is given: CHIMERA_THREADS when
 * set to a positive integer, otherwise hardwareThreadCount().
 */
int defaultThreadCount();

/** Resolves a requested count: >= 1 is exact, <= 0 defers to
 * defaultThreadCount(). Clamped to a sane upper bound. */
int resolveThreadCount(int requested);

/** Fixed-size pool of persistent worker threads. */
class ThreadPool
{
  public:
    /** @param threads >= 1 exact size; <= 0 uses defaultThreadCount(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of workers, including the calling thread. */
    int size() const;

    /**
     * Calls fn(i, worker) exactly once for every i in [begin, end),
     * splitting the range into size() contiguous chunks (worker w gets
     * chunk w; the calling thread runs chunk 0 as worker 0). Blocks
     * until every chunk finished, then rethrows the first captured
     * exception (by worker index). Nested calls from inside a running
     * chunk execute serially on the calling worker.
     */
    void parallelFor(std::int64_t begin, std::int64_t end,
                     const std::function<void(std::int64_t, int)> &fn);

    /** Process-wide pool sized by defaultThreadCount() at first use. */
    static ThreadPool &global();

    /**
     * Process-wide pool of the resolved size (one persistent pool per
     * distinct size; created lazily and kept for the process lifetime).
     */
    static ThreadPool &withSize(int threads);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Pool for a requested executor/planner thread count: nullptr when the
 * resolved count is 1 (serial), else the shared pool of that size.
 */
ThreadPool *poolForThreads(int threads);

/**
 * parallelFor that tolerates a null pool: runs the loop serially as
 * worker 0 when @p pool is nullptr, else forwards to the pool.
 */
void parallelFor(ThreadPool *pool, std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t, int)> &fn);

/** A worker's contiguous sub-range of a statically split index space. */
struct ChunkRange
{
    std::int64_t begin = 0;
    std::int64_t end = 0; ///< empty when begin == end
};

/**
 * The [begin, end) sub-range of @p total items that @p worker owns under
 * the pool's static contiguous split across @p workers — the exact same
 * math parallelFor uses, exported so planners and profilers can reason
 * about the static worker -> chunk assignment (e.g. the scaling bench's
 * simulated critical path). The first (total % workers) workers own one
 * extra item.
 */
ChunkRange staticChunkRange(std::int64_t total, int workers, int worker);

/**
 * Inverse of staticChunkRange: the worker that owns item @p index of
 * @p total under the static split across @p workers. Out-of-range
 * indices clamp to the nearest real item, so the result is always in
 * [0, workers) and always names a worker whose range contains at least
 * one item (worker 0 when total <= 0).
 */
int staticChunkOwner(std::int64_t index, std::int64_t total, int workers);

} // namespace chimera
