#pragma once

/**
 * @file
 * Wall-clock timing helpers used by benchmarks and the tuner baseline.
 */

#include <chrono>
#include <cstdint>

namespace chimera {

/** Monotonic wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restarts the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed time in seconds since construction or the last reset(). */
    double
    seconds() const
    {
        const auto delta = Clock::now() - start_;
        return std::chrono::duration<double>(delta).count();
    }

    /** Elapsed time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

    /** Elapsed time in microseconds. */
    double microseconds() const { return seconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Runs @p fn repeatedly and returns the best-of-N time in seconds.
 *
 * Best-of is the standard estimator for short deterministic kernels: it
 * filters scheduler noise without averaging in cold-cache outliers.
 *
 * @param fn      Callable to measure.
 * @param repeats Number of timed repetitions (>= 1).
 * @param warmup  Untimed warmup calls executed first.
 */
template <typename Fn>
double
bestOfSeconds(Fn &&fn, int repeats, int warmup = 1)
{
    for (int i = 0; i < warmup; ++i) {
        fn();
    }
    double best = 1e300;
    for (int i = 0; i < repeats; ++i) {
        WallTimer t;
        fn();
        const double s = t.seconds();
        if (s < best) {
            best = s;
        }
    }
    return best;
}

} // namespace chimera
