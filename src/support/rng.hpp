#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in Chimera (tensor initialization, the random-sampling
 * tuner baseline) flows through Rng so that runs are reproducible from a
 * seed.
 */

#include <cstdint>

namespace chimera {

/**
 * SplitMix64-based generator. Small state, excellent statistical quality
 * for test-data purposes, and trivially seedable.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

  private:
    std::uint64_t state_;
};

} // namespace chimera
