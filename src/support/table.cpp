#include "support/table.hpp"

#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace chimera {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CHIMERA_CHECK(!headers_.empty(), "table needs at least one column");
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    CHIMERA_CHECK(cells.size() == headers_.size(),
                  "row arity does not match header");
    rows_.push_back(std::move(cells));
}

std::string
AsciiTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
AsciiTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            oss << (c == 0 ? "| " : " | ") << std::left
                << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        oss << " |\n";
    };

    emitRow(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        oss << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
    }
    oss << "-|\n";
    for (const auto &row : rows_) {
        emitRow(row);
    }
    return oss.str();
}

} // namespace chimera
