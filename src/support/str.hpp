#pragma once

/**
 * @file
 * Small string helpers used across modules.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace chimera {

/** Joins @p parts with @p sep. */
std::string joinStrings(const std::vector<std::string> &parts,
                        const std::string &sep);

/** Formats a byte count with a binary-unit suffix (KiB/MiB/GiB). */
std::string formatBytes(double bytes);

/** Formats a vector of integers as "(a, b, c)". */
std::string formatVector(const std::vector<std::int64_t> &values);

/**
 * Parses @p token as a complete decimal integer: the whole token must be
 * consumed (no trailing garbage, no empty token) and the value must fit
 * in int64. Throws Error prefixed with @p context otherwise — unlike
 * std::stoll, which both accepts "64abc" and escapes as
 * std::invalid_argument.
 */
std::int64_t parseInt64Strict(const std::string &token,
                              const std::string &context);

/** Full-token floating-point counterpart of parseInt64Strict. */
double parseDoubleStrict(const std::string &token,
                         const std::string &context);

/** 64-bit FNV-1a hash of @p data, formatted as 16 lowercase hex chars. */
std::string fnv1a64Hex(const std::string &data);

} // namespace chimera
