#pragma once

/**
 * @file
 * Small string helpers used across modules.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace chimera {

/** Joins @p parts with @p sep. */
std::string joinStrings(const std::vector<std::string> &parts,
                        const std::string &sep);

/** Formats a byte count with a binary-unit suffix (KiB/MiB/GiB). */
std::string formatBytes(double bytes);

/** Formats a vector of integers as "(a, b, c)". */
std::string formatVector(const std::vector<std::int64_t> &values);

} // namespace chimera
