#include "support/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/logging.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace chimera {

namespace {

/** Backstop against absurd CHIMERA_THREADS values / requests. */
constexpr int kMaxThreads = 256;

#ifdef __linux__
/**
 * Whether CHIMERA_AFFINITY requests pinning. Read exactly once, under
 * the magic-static lock of the first caller: getenv is not safe against
 * concurrent setenv (clang-tidy concurrency-mt-unsafe), and every pool
 * worker consults this on startup — a per-worker getenv would race with
 * any test that mutates the environment while a pool spins up.
 */
bool
affinityRequested()
{
    static const bool requested = [] {
        // NOLINTNEXTLINE(concurrency-mt-unsafe): single read at first
        // use; the process does not setenv concurrently with pool start.
        const char *env = std::getenv("CHIMERA_AFFINITY");
        return env != nullptr && *env != '\0' &&
               !(env[0] == '0' && env[1] == '\0');
    }();
    return requested;
}
#endif

/** CHIMERA_AFFINITY=1: pin pool worker @p worker compactly (Linux). */
void
maybePinWorker(int worker)
{
#ifdef __linux__
    if (!affinityRequested()) {
        return;
    }
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(worker % hardwareThreadCount()), &set);
    if (pthread_setaffinity_np(pthread_self(), sizeof set, &set) != 0) {
        static std::once_flag warned;
        std::call_once(warned, [] {
            CHIMERA_WARN(
                "CHIMERA_AFFINITY is set but pinning failed; workers"
                " run unpinned");
        });
    }
#else
    (void)worker;
#endif
}

/**
 * Set while this thread is executing a parallelFor chunk; nested
 * parallelFor calls then run inline so a loop body that itself calls a
 * parallelized routine cannot deadlock waiting on its own pool.
 */
thread_local bool tlsInsideChunk = false;

} // namespace

int
hardwareThreadCount()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

int
defaultThreadCount()
{
    // Copy the value out immediately: getenv's result can be
    // invalidated by a concurrent setenv (which is why clang-tidy's
    // concurrency-mt-unsafe flags it), and the tests legitimately
    // re-point CHIMERA_THREADS between calls, so the read cannot be
    // cached in a static. The single justified read keeps the exposure
    // to the one pointer dereference below.
    // NOLINTNEXTLINE(concurrency-mt-unsafe): deliberate re-read; the
    // value is copied to owned storage before any further work.
    const char *raw = std::getenv("CHIMERA_THREADS");
    const std::string env = raw == nullptr ? std::string() : raw;
    if (!env.empty()) {
        errno = 0;
        char *end = nullptr;
        const long v = std::strtol(env.c_str(), &end, 10);
        const bool fullToken = *end == '\0';
        if (fullToken && errno == 0 && v >= 1) {
            return static_cast<int>(
                std::min<long>(v, static_cast<long>(kMaxThreads)));
        }
        // "4abc" must not silently run with 4 threads, nor "abc" with
        // a silent fallback: reject the whole token, warn once.
        static std::once_flag warned;
        std::call_once(warned, [&env] {
            CHIMERA_WARN("ignoring invalid CHIMERA_THREADS value \""
                         << env
                         << "\" (expected an integer >= 1); using the "
                            "hardware thread count");
        });
    }
    return hardwareThreadCount();
}

int
resolveThreadCount(int requested)
{
    if (requested >= 1) {
        return std::min(requested, kMaxThreads);
    }
    return defaultThreadCount();
}

struct ThreadPool::Impl
{
    explicit Impl(int size) : size_(size)
    {
        threads_.reserve(static_cast<std::size_t>(size_ - 1));
        for (int w = 1; w < size_; ++w) {
            threads_.emplace_back([this, w] { workerLoop(w); });
        }
    }

    ~Impl()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : threads_) {
            t.join();
        }
    }

    /** Contiguous chunk of the current job owned by @p worker. */
    void
    runChunk(int worker)
    {
        const std::int64_t total = end_ - begin_;
        const std::int64_t per = total / size_;
        const std::int64_t rem = total % size_;
        const std::int64_t start =
            begin_ + worker * per + std::min<std::int64_t>(worker, rem);
        const std::int64_t stop = start + per + (worker < rem ? 1 : 0);
        tlsInsideChunk = true;
        try {
            for (std::int64_t i = start; i < stop; ++i) {
                (*fn_)(i, worker);
            }
        } catch (...) {
            errors_[static_cast<std::size_t>(worker)] =
                std::current_exception();
        }
        tlsInsideChunk = false;
    }

    void
    workerLoop(int worker)
    {
        maybePinWorker(worker);
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(m_);
                wake_.wait(lock,
                           [&] { return stop_ || generation_ != seen; });
                if (stop_) {
                    return;
                }
                seen = generation_;
            }
            runChunk(worker);
            {
                std::lock_guard<std::mutex> lock(m_);
                if (--pending_ == 0) {
                    done_.notify_all();
                }
            }
        }
    }

    void
    parallelFor(std::int64_t begin, std::int64_t end,
                const std::function<void(std::int64_t, int)> &fn)
    {
        if (end <= begin) {
            return;
        }
        if (size_ == 1 || tlsInsideChunk) {
            for (std::int64_t i = begin; i < end; ++i) {
                fn(i, 0);
            }
            return;
        }
        // One job at a time; concurrent external submissions queue here.
        std::lock_guard<std::mutex> job(jobMutex_);
        errors_.assign(static_cast<std::size_t>(size_), nullptr);
        {
            std::lock_guard<std::mutex> lock(m_);
            fn_ = &fn;
            begin_ = begin;
            end_ = end;
            pending_ = size_ - 1;
            ++generation_;
        }
        wake_.notify_all();
        runChunk(0);
        {
            std::unique_lock<std::mutex> lock(m_);
            done_.wait(lock, [&] { return pending_ == 0; });
        }
        for (std::exception_ptr &err : errors_) {
            if (err) {
                std::rethrow_exception(err);
            }
        }
    }

    const int size_;
    std::vector<std::thread> threads_;

    std::mutex jobMutex_; ///< serializes parallelFor submissions

    std::mutex m_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;

    // Current job; written under m_ before the generation bump, read by
    // workers only after observing the new generation under m_.
    const std::function<void(std::int64_t, int)> *fn_ = nullptr;
    std::int64_t begin_ = 0;
    std::int64_t end_ = 0;
    std::vector<std::exception_ptr> errors_;
};

ThreadPool::ThreadPool(int threads)
    : impl_(std::make_unique<Impl>(resolveThreadCount(threads)))
{
}

ThreadPool::~ThreadPool() = default;

int
ThreadPool::size() const
{
    return impl_->size_;
}

void
ThreadPool::parallelFor(std::int64_t begin, std::int64_t end,
                        const std::function<void(std::int64_t, int)> &fn)
{
    impl_->parallelFor(begin, end, fn);
}

ThreadPool &
ThreadPool::withSize(int threads)
{
    static std::mutex mu;
    static std::map<int, std::unique_ptr<ThreadPool>> pools;
    const int n = resolveThreadCount(threads);
    std::lock_guard<std::mutex> lock(mu);
    std::unique_ptr<ThreadPool> &slot = pools[n];
    if (!slot) {
        slot = std::make_unique<ThreadPool>(n);
    }
    return *slot;
}

ThreadPool &
ThreadPool::global()
{
    return withSize(0);
}

ThreadPool *
poolForThreads(int threads)
{
    const int n = resolveThreadCount(threads);
    return n <= 1 ? nullptr : &ThreadPool::withSize(n);
}

void
parallelFor(ThreadPool *pool, std::int64_t begin, std::int64_t end,
            const std::function<void(std::int64_t, int)> &fn)
{
    if (pool == nullptr) {
        for (std::int64_t i = begin; i < end; ++i) {
            fn(i, 0);
        }
        return;
    }
    pool->parallelFor(begin, end, fn);
}

ChunkRange
staticChunkRange(std::int64_t total, int workers, int worker)
{
    if (total <= 0 || workers <= 0 || worker < 0 || worker >= workers) {
        return {};
    }
    const std::int64_t per = total / workers;
    const std::int64_t rem = total % workers;
    const std::int64_t start =
        worker * per + std::min<std::int64_t>(worker, rem);
    return {start, start + per + (worker < rem ? 1 : 0)};
}

int
staticChunkOwner(std::int64_t index, std::int64_t total, int workers)
{
    if (total <= 0 || workers <= 1) {
        return 0;
    }
    // Clamp out-of-range indices to the nearest real item so the
    // result is always a worker whose range is non-empty. (The old
    // "index >= total -> workers - 1" clamp pointed at an *empty*
    // worker whenever total < workers.)
    index = std::clamp<std::int64_t>(index, 0, total - 1);
    const std::int64_t per = total / workers;
    const std::int64_t rem = total % workers;
    if (per == 0) {
        return static_cast<int>(index); // fewer items than workers
    }
    // The first rem workers own per + 1 items each.
    const std::int64_t big = (per + 1) * rem;
    if (index < big) {
        return static_cast<int>(index / (per + 1));
    }
    return static_cast<int>(rem + (index - big) / per);
}

} // namespace chimera
