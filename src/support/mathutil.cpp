#include "support/mathutil.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace chimera {

std::vector<std::int64_t>
divisorsOf(std::int64_t n)
{
    CHIMERA_CHECK(n >= 1, "divisorsOf requires a positive integer");
    std::vector<std::int64_t> divs;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            divs.push_back(d);
            if (d != n / d) {
                divs.push_back(n / d);
            }
        }
    }
    std::sort(divs.begin(), divs.end());
    return divs;
}

std::vector<std::int64_t>
tileCandidates(std::int64_t n)
{
    CHIMERA_CHECK(n >= 1, "tileCandidates requires a positive extent");
    std::vector<std::int64_t> cands = divisorsOf(n);
    for (std::int64_t p = 1; p <= n; p *= 2) {
        cands.push_back(p);
    }
    for (std::int64_t m = 8; m <= n; m += 8) {
        cands.push_back(m);
    }
    cands.push_back(n);
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    return cands;
}

std::int64_t
factorial(int n)
{
    CHIMERA_CHECK(n >= 0 && n <= 20, "factorial argument out of range");
    std::int64_t result = 1;
    for (int i = 2; i <= n; ++i) {
        result *= i;
    }
    return result;
}

std::vector<std::vector<int>>
allPermutations(int n)
{
    CHIMERA_CHECK(n >= 0 && n <= 10,
                  "permutation enumeration capped at 10 axes");
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) {
        perm[i] = i;
    }
    std::vector<std::vector<int>> result;
    result.reserve(static_cast<std::size_t>(factorial(n)));
    do {
        result.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return result;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty()) {
        return 0.0;
    }
    double logSum = 0.0;
    for (double v : values) {
        CHIMERA_CHECK(v > 0.0, "geometricMean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
rSquared(const std::vector<double> &predicted,
         const std::vector<double> &measured)
{
    CHIMERA_CHECK(predicted.size() == measured.size() && !measured.empty(),
                  "rSquared requires equal-length non-empty vectors");
    double mean = 0.0;
    for (double m : measured) {
        mean += m;
    }
    mean /= static_cast<double>(measured.size());

    double ssRes = 0.0;
    double ssTot = 0.0;
    for (std::size_t i = 0; i < measured.size(); ++i) {
        const double res = measured[i] - predicted[i];
        const double dev = measured[i] - mean;
        ssRes += res * res;
        ssTot += dev * dev;
    }
    if (ssTot == 0.0) {
        return ssRes == 0.0 ? 1.0 : 0.0;
    }
    return 1.0 - ssRes / ssTot;
}

} // namespace chimera
