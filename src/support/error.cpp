#include "support/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace chimera {
namespace detail {

void
throwCheckFailure(const char *file, int line, const char *expr,
                  const std::string &message)
{
    std::ostringstream oss;
    oss << "CHIMERA_CHECK failed: " << expr << " at " << file << ":" << line;
    if (!message.empty()) {
        oss << " — " << message;
    }
    throw Error(oss.str());
}

void
assertFailure(const char *file, int line, const char *expr,
              const std::string &message)
{
    std::fprintf(stderr, "CHIMERA_ASSERT failed: %s at %s:%d — %s\n", expr,
                 file, line, message.c_str());
    std::abort();
}

} // namespace detail
} // namespace chimera
