#include "support/cpu_features.hpp"

namespace chimera {

SimdTier
detectSimdTier()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw")) {
        return SimdTier::Avx512;
    }
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
        return SimdTier::Avx2Fma;
    }
#endif
    return SimdTier::Scalar;
}

std::string
simdTierName(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Scalar: return "scalar";
      case SimdTier::Avx2Fma: return "avx2";
      case SimdTier::Avx512: return "avx512";
    }
    return "unknown";
}

int
simdLanes(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Scalar: return 1;
      case SimdTier::Avx2Fma: return 8;
      case SimdTier::Avx512: return 16;
    }
    return 1;
}

} // namespace chimera
