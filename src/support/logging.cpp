#include "support/logging.hpp"

#include <atomic>
#include <cstdio>

namespace chimera {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &message)
{
    std::fprintf(stderr, "[chimera %s] %s\n", levelName(level),
                 message.c_str());
}

} // namespace chimera
