#pragma once

/**
 * @file
 * Error handling primitives for Chimera.
 *
 * Follows the gem5 fatal()/panic() split: Error is thrown for conditions
 * caused by bad user input (invalid shapes, impossible constraints), while
 * CHIMERA_ASSERT guards internal invariants that indicate a library bug.
 */

#include <stdexcept>
#include <string>

namespace chimera {

/** Exception thrown for user-facing errors (bad configuration or input). */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

namespace detail {

/** Throws Error with file/line context. Used by CHIMERA_CHECK. */
[[noreturn]] void throwCheckFailure(const char *file, int line,
                                    const char *expr,
                                    const std::string &message);

/** Aborts with file/line context. Used by CHIMERA_ASSERT. */
[[noreturn]] void assertFailure(const char *file, int line, const char *expr,
                                const std::string &message);

} // namespace detail

} // namespace chimera

/**
 * Validates a user-facing precondition; throws chimera::Error on failure.
 * The message argument is evaluated lazily.
 */
#define CHIMERA_CHECK(expr, message)                                         \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::chimera::detail::throwCheckFailure(__FILE__, __LINE__, #expr,  \
                                                 (message));                 \
        }                                                                    \
    } while (false)

/**
 * Validates an internal invariant; aborts on failure (a Chimera bug).
 * Active in all build types: the analytical model must never be silently
 * wrong.
 */
#define CHIMERA_ASSERT(expr, message)                                        \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::chimera::detail::assertFailure(__FILE__, __LINE__, #expr,      \
                                             (message));                     \
        }                                                                    \
    } while (false)
