#include "support/str.hpp"

#include <iomanip>

namespace chimera {

std::string
joinStrings(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) {
            out += sep;
        }
        out += parts[i];
    }
    return out;
}

std::string
formatBytes(double bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int unit = 0;
    while (bytes >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(unit == 0 ? 0 : 2) << bytes << " "
        << units[unit];
    return oss.str();
}

std::string
formatVector(const std::vector<std::int64_t> &values)
{
    std::ostringstream oss;
    oss << "(";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) {
            oss << ", ";
        }
        oss << values[i];
    }
    oss << ")";
    return oss.str();
}

} // namespace chimera
