#include "support/str.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iomanip>

#include "support/error.hpp"

namespace chimera {

std::string
joinStrings(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) {
            out += sep;
        }
        out += parts[i];
    }
    return out;
}

std::string
formatBytes(double bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int unit = 0;
    while (bytes >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(unit == 0 ? 0 : 2) << bytes << " "
        << units[unit];
    return oss.str();
}

std::string
formatVector(const std::vector<std::int64_t> &values)
{
    std::ostringstream oss;
    oss << "(";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) {
            oss << ", ";
        }
        oss << values[i];
    }
    oss << ")";
    return oss.str();
}

std::int64_t
parseInt64Strict(const std::string &token, const std::string &context)
{
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    const bool consumed =
        !token.empty() && end == token.c_str() + token.size();
    if (!consumed || errno == ERANGE) {
        throw Error(context + ": invalid integer \"" + token + "\"");
    }
    return static_cast<std::int64_t>(value);
}

double
parseDoubleStrict(const std::string &token, const std::string &context)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    const bool consumed =
        !token.empty() && end == token.c_str() + token.size();
    if (!consumed || errno == ERANGE) {
        throw Error(context + ": invalid number \"" + token + "\"");
    }
    return value;
}

std::string
fnv1a64Hex(const std::string &data)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    // snprintf, not ostringstream: callers sit on the plan cache's warm
    // lookup path where stream construction dominates.
    char hex[17];
    // %016llx is exactly 16 chars; the buffer cannot truncate
    // (cert-err33-c).
    static_cast<void>(std::snprintf(
        hex, sizeof hex, "%016llx",
        static_cast<unsigned long long>(hash)));
    return hex;
}

} // namespace chimera
