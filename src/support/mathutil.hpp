#pragma once

/**
 * @file
 * Small integer-math helpers shared across the analytical model, the
 * solver, and the executors.
 */

#include <cstdint>
#include <vector>

namespace chimera {

/** Ceiling division for positive integers: ceil(a / b). */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Rounds @p a up to the next multiple of @p b. */
constexpr std::int64_t
roundUp(std::int64_t a, std::int64_t b)
{
    return ceilDiv(a, b) * b;
}

/** Clamps @p v into the closed range [@p lo, @p hi]. */
constexpr std::int64_t
clampI64(std::int64_t v, std::int64_t lo, std::int64_t hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Returns all positive divisors of @p n in ascending order. */
std::vector<std::int64_t> divisorsOf(std::int64_t n);

/**
 * Returns candidate tile sizes for an extent @p n: all divisors plus the
 * sizes that tile n with bounded remainder (powers of two and small
 * multiples), deduplicated and ascending. The solver rounds real-valued
 * optima onto this lattice.
 */
std::vector<std::int64_t> tileCandidates(std::int64_t n);

/** Returns n! for small n (n <= 20). */
std::int64_t factorial(int n);

/**
 * Enumerates all permutations of {0, 1, ..., n-1}.
 * Intended for the planner's I! block-order search (I is small: the paper's
 * chains have 4-10 independent loops; we cap enumeration in the planner).
 */
std::vector<std::vector<int>> allPermutations(int n);

/** Geometric mean of @p values; returns 0 for an empty input. */
double geometricMean(const std::vector<double> &values);

/**
 * Coefficient of determination R^2 between predictions and ground truth.
 * Used by the Figure-8 model-validation experiment.
 */
double rSquared(const std::vector<double> &predicted,
                const std::vector<double> &measured);

} // namespace chimera
