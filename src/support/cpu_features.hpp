#pragma once

/**
 * @file
 * Runtime CPU feature detection used by the replaceable-micro-kernel
 * registry to pick the widest available implementation.
 */

#include <string>

namespace chimera {

/** SIMD capability tiers relevant to the CPU micro kernels. */
enum class SimdTier
{
    Scalar = 0, ///< No usable vector FMA; portable C fallback.
    Avx2Fma = 1, ///< 256-bit FMA (8 fp32 lanes).
    Avx512 = 2, ///< 512-bit FMA (16 fp32 lanes).
};

/** Detects the best SIMD tier supported by the running CPU. */
SimdTier detectSimdTier();

/** Human-readable tier name ("scalar", "avx2", "avx512"). */
std::string simdTierName(SimdTier tier);

/** fp32 lanes per vector register for @p tier (1, 8, or 16). */
int simdLanes(SimdTier tier);

} // namespace chimera
