#pragma once

/**
 * @file
 * ASCII table printer. Every bench binary reports the rows of its
 * paper table/figure through this so outputs are uniform and diffable.
 */

#include <string>
#include <vector>

namespace chimera {

/** Column-aligned ASCII table builder. */
class AsciiTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit AsciiTable(std::vector<std::string> headers);

    /** Appends a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats doubles with @p precision digits. */
    static std::string num(double value, int precision = 3);

    /** Renders the table, including a rule under the header. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace chimera
