#pragma once

/**
 * @file
 * The paper's analytical data-movement model (Algorithm 1, §IV-B).
 *
 * Given an operator chain, a block execution order (a permutation of the
 * chain's independent axes, outermost first) and a tile-size vector S,
 * the model returns the total data movement volume (DV) of the chain's
 * input/output tensors and the peak on-chip memory usage (MU).
 *
 * Implementation notes relative to the paper's pseudo-code:
 *  - Axes whose tile covers the full extent have a single block; they are
 *    skipped in the keep_reuse scan (a one-block "loop" neither replaces
 *    a tile nor multiplies the volume). This is the block-level reading
 *    of the permutation the pseudo-code assumes.
 *  - An optional flag treats intermediate tensors as IO, which models the
 *    "no intermediate reuse" configuration of Figure 8f and the unfused
 *    baselines.
 */

#include <cstdint>
#include <vector>

#include "ir/chain.hpp"

namespace chimera::model {

/** Result of one Algorithm-1 evaluation. */
struct DataMovement
{
    /** Total data movement volume across IO tensors, in bytes. */
    double volumeBytes = 0.0;

    /** Peak on-chip memory usage (max over ops of tile footprints). */
    std::int64_t memUsageBytes = 0;

    /** Per-tensor movement in bytes, indexed like Chain::tensors(). */
    std::vector<double> perTensorBytes;
};

/** Options controlling the model evaluation. */
struct ModelOptions
{
    /**
     * When true, intermediate tensors are charged movement as if they
     * were spilled and re-read (Figure 8f / unfused execution).
     */
    bool intermediatesAreIO = false;
};

/**
 * Algorithm 1: data movement volume and memory usage.
 *
 * @param chain The operator chain.
 * @param perm  All axis ids, outermost first. Must be a permutation of
 *              0..numAxes-1.
 * @param tiles Tile size per axis (1 <= tile <= extent), indexed by axis.
 */
DataMovement computeDataMovement(const ir::Chain &chain,
                                 const std::vector<ir::AxisId> &perm,
                                 const std::vector<std::int64_t> &tiles,
                                 const ModelOptions &options = {});

/**
 * Reuse summary used by diagnostics and the Figure-2 table bench: for
 * each IO tensor, the names of the axes along which the tensor is fully
 * reused under @p perm with the given tiles (i.e. block loops that do not
 * multiply its movement).
 */
std::vector<std::vector<std::string>>
reuseAxesPerTensor(const ir::Chain &chain,
                   const std::vector<ir::AxisId> &perm,
                   const std::vector<std::int64_t> &tiles);

/**
 * True when @p perm can be executed with each intermediate tensor held
 * as a single on-chip region: every reorderable multi-block axis used by
 * an intermediate's producer or consumer but not indexing the
 * intermediate itself (reduction axes like k, consumer-only axes like n)
 * must sit inner to every axis that indexes the intermediate. Orders
 * violating this would revisit a region after eviction, which the
 * on-chip-intermediate assumption of Algorithm 1 cannot express; the
 * planner only selects executable orders (the paper's validated optima,
 * e.g. mlkn/mlnk, are all executable).
 */
bool isExecutableOrder(const ir::Chain &chain,
                       const std::vector<ir::AxisId> &perm);

/**
 * Tile-aware variant: axes whose tile covers the full extent have a
 * single block and impose no ordering constraint (e.g. a middle-GEMM
 * output held as a full panel in a three-operator chain).
 */
bool isExecutableOrder(const ir::Chain &chain,
                       const std::vector<ir::AxisId> &perm,
                       const std::vector<std::int64_t> &tiles);

/** Validates that @p perm is a permutation of all chain axes. */
void validatePermutation(const ir::Chain &chain,
                         const std::vector<ir::AxisId> &perm);

/** Validates 1 <= tiles[a] <= extent(a) for every axis. */
void validateTiles(const ir::Chain &chain,
                   const std::vector<std::int64_t> &tiles);

} // namespace chimera::model
