#include "model/data_movement.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace chimera::model {

using ir::AxisId;
using ir::Chain;
using ir::OpDecl;
using ir::TensorDecl;
using ir::TensorKind;

void
validatePermutation(const Chain &chain, const std::vector<AxisId> &perm)
{
    CHIMERA_CHECK(static_cast<int>(perm.size()) == chain.numAxes(),
                  "permutation must cover every axis");
    std::vector<bool> seen(perm.size(), false);
    for (AxisId axis : perm) {
        CHIMERA_CHECK(axis >= 0 && axis < chain.numAxes(),
                      "permutation contains an unknown axis");
        CHIMERA_CHECK(!seen[static_cast<std::size_t>(axis)],
                      "permutation repeats an axis");
        seen[static_cast<std::size_t>(axis)] = true;
    }
}

void
validateTiles(const Chain &chain, const std::vector<std::int64_t> &tiles)
{
    CHIMERA_CHECK(static_cast<int>(tiles.size()) == chain.numAxes(),
                  "tile vector must cover every axis");
    for (int a = 0; a < chain.numAxes(); ++a) {
        const std::int64_t extent =
            chain.axes()[static_cast<std::size_t>(a)].extent;
        CHIMERA_CHECK(tiles[static_cast<std::size_t>(a)] >= 1 &&
                          tiles[static_cast<std::size_t>(a)] <= extent,
                      "tile size out of range for axis " +
                          chain.axes()[static_cast<std::size_t>(a)].name);
    }
}

namespace {

/** Number of blocks of @p axis under @p tiles. */
std::int64_t
blockCount(const Chain &chain, const std::vector<std::int64_t> &tiles,
           AxisId axis)
{
    const auto a = static_cast<std::size_t>(axis);
    return ceilDiv(chain.axes()[a].extent, tiles[a]);
}

/**
 * Movement multiplier for one tensor within one operator: the product of
 * trip counts of every block loop from the innermost accessing loop
 * outward (Algorithm 1 lines 9-15).
 */
double
tensorMovementMultiplier(const Chain &chain, const OpDecl &op,
                         const TensorDecl &tensor,
                         const std::vector<AxisId> &activePerm,
                         const std::vector<std::int64_t> &tiles)
{
    double multiplier = 1.0;
    bool keepReuse = true;
    for (auto it = activePerm.rbegin(); it != activePerm.rend(); ++it) {
        const AxisId axis = *it;
        if (!op.usesLoop(axis)) {
            continue;
        }
        const std::int64_t blocks = blockCount(chain, tiles, axis);
        if (blocks == 1) {
            continue; // single block: never replaces the tensor's tile
        }
        if (tensor.usesAxis(axis)) {
            keepReuse = false;
        }
        if (!keepReuse) {
            multiplier *= static_cast<double>(blocks);
        }
    }
    return multiplier;
}

} // namespace

DataMovement
computeDataMovement(const Chain &chain, const std::vector<AxisId> &perm,
                    const std::vector<std::int64_t> &tiles,
                    const ModelOptions &options)
{
    validatePermutation(chain, perm);
    validateTiles(chain, tiles);

    DataMovement result;
    result.perTensorBytes.assign(chain.tensors().size(), 0.0);

    std::vector<AxisId> activePerm = perm;
    for (std::size_t opIdx = 0; opIdx < chain.ops().size(); ++opIdx) {
        const OpDecl &op = chain.ops()[opIdx];
        std::int64_t totalFootprintBytes = 0;
        for (int t : op.tensorIds) {
            const TensorDecl &tensor =
                chain.tensors()[static_cast<std::size_t>(t)];
            const std::int64_t footprintBytes =
                tensor.footprintElems(tiles) * tensor.elementSize;
            totalFootprintBytes += footprintBytes;

            const bool counted = options.intermediatesAreIO ||
                                 tensor.kind != TensorKind::Intermediate;
            if (!counted) {
                continue;
            }
            const double movement =
                static_cast<double>(footprintBytes) *
                tensorMovementMultiplier(chain, op, tensor, activePerm,
                                         tiles);
            result.volumeBytes += movement;
            result.perTensorBytes[static_cast<std::size_t>(t)] += movement;
        }

        // Remove loops private to this producer before visiting consumers
        // (Algorithm 1 lines 17-19, observation 3).
        for (AxisId axis : chain.privateAxesOf(static_cast<int>(opIdx))) {
            activePerm.erase(
                std::remove(activePerm.begin(), activePerm.end(), axis),
                activePerm.end());
        }
        result.memUsageBytes =
            std::max(result.memUsageBytes, totalFootprintBytes);
    }
    return result;
}

bool
isExecutableOrder(const Chain &chain, const std::vector<AxisId> &perm)
{
    // Conservative: every reorderable multi-extent axis is assumed to
    // be blocked (tile < extent).
    std::vector<std::int64_t> ones(static_cast<std::size_t>(
                                       chain.numAxes()),
                                   1);
    return isExecutableOrder(chain, perm, ones);
}

bool
isExecutableOrder(const Chain &chain, const std::vector<AxisId> &perm,
                  const std::vector<std::int64_t> &tiles)
{
    validatePermutation(chain, perm);
    validateTiles(chain, tiles);
    std::vector<int> position(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
        position[static_cast<std::size_t>(perm[i])] = static_cast<int>(i);
    }
    auto isFreeAxis = [&](AxisId axis) {
        const ir::Axis &a = chain.axes()[static_cast<std::size_t>(axis)];
        return a.reorderable && a.extent > 1 &&
               blockCount(chain, tiles, axis) > 1;
    };

    for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
        const TensorDecl &tensor = chain.tensors()[t];
        if (tensor.kind != TensorKind::Intermediate) {
            continue;
        }
        // Region axes index the intermediate; user axes belong to its
        // producer or consumer nests.
        std::vector<AxisId> regionAxes;
        std::vector<AxisId> otherAxes;
        for (const OpDecl &op : chain.ops()) {
            const bool touches =
                std::find(op.tensorIds.begin(), op.tensorIds.end(),
                          static_cast<int>(t)) != op.tensorIds.end();
            if (!touches) {
                continue;
            }
            for (AxisId axis : op.loops) {
                if (!isFreeAxis(axis)) {
                    continue;
                }
                auto &dst =
                    tensor.usesAxis(axis) ? regionAxes : otherAxes;
                if (std::find(dst.begin(), dst.end(), axis) == dst.end()) {
                    dst.push_back(axis);
                }
            }
        }
        for (AxisId region : regionAxes) {
            for (AxisId other : otherAxes) {
                if (position[static_cast<std::size_t>(other)] <
                    position[static_cast<std::size_t>(region)]) {
                    return false; // region revisited by an outer loop
                }
            }
        }
    }
    return true;
}

std::vector<std::vector<std::string>>
reuseAxesPerTensor(const Chain &chain, const std::vector<AxisId> &perm,
                   const std::vector<std::int64_t> &tiles)
{
    validatePermutation(chain, perm);
    validateTiles(chain, tiles);

    std::vector<std::vector<std::string>> reuse(chain.tensors().size());
    std::vector<AxisId> activePerm = perm;
    std::vector<AxisId> removedPrivate;
    for (std::size_t opIdx = 0; opIdx < chain.ops().size(); ++opIdx) {
        const OpDecl &op = chain.ops()[opIdx];
        for (int t : op.tensorIds) {
            const TensorDecl &tensor =
                chain.tensors()[static_cast<std::size_t>(t)];
            if (tensor.kind == TensorKind::Intermediate) {
                continue;
            }
            // Loops private to earlier producers never iterate over a
            // consumer's tensors (observation 3): the paper reports them
            // as reuse dimensions ("D and E are always reused along k").
            for (AxisId axis : removedPrivate) {
                if (blockCount(chain, tiles, axis) > 1) {
                    reuse[static_cast<std::size_t>(t)].push_back(
                        chain.axes()[static_cast<std::size_t>(axis)].name);
                }
            }
            bool keepReuse = true;
            for (auto it = activePerm.rbegin(); it != activePerm.rend();
                 ++it) {
                const AxisId axis = *it;
                if (!op.usesLoop(axis)) {
                    // Loops of other operators never move this tensor.
                    continue;
                }
                if (blockCount(chain, tiles, axis) == 1) {
                    continue;
                }
                if (tensor.usesAxis(axis)) {
                    keepReuse = false;
                }
                if (keepReuse) {
                    reuse[static_cast<std::size_t>(t)].push_back(
                        chain.axes()[static_cast<std::size_t>(axis)].name);
                }
            }
        }
        for (ir::AxisId axis : chain.privateAxesOf(static_cast<int>(opIdx))) {
            activePerm.erase(
                std::remove(activePerm.begin(), activePerm.end(), axis),
                activePerm.end());
            removedPrivate.push_back(axis);
        }
    }
    return reuse;
}

} // namespace chimera::model
