#include "model/symbolic.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "model/data_movement.hpp"
#include "support/error.hpp"

namespace chimera::model {

using ir::AxisId;
using ir::Chain;

namespace {

/** Upper-cased axis name: the full-extent symbol (m -> M). */
std::string
extentSymbol(const Chain &chain, AxisId axis)
{
    std::string name = chain.axes()[static_cast<std::size_t>(axis)].name;
    for (char &c : name) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return name;
}

/** Tile symbol (m -> T_m). */
std::string
tileSymbol(const Chain &chain, AxisId axis)
{
    return "T_" + chain.axes()[static_cast<std::size_t>(axis)].name;
}

bool
isBlocked(const Chain &chain, AxisId axis)
{
    const ir::Axis &a = chain.axes()[static_cast<std::size_t>(axis)];
    return a.reorderable && a.extent > 1;
}

/** One symbolic product with T_x * ceil(X/T_x) cancellation. */
struct Product
{
    // Footprint factors: either a plain axis tile (cancellable) or an
    // opaque affine string.
    std::vector<AxisId> tileFactors;
    std::vector<std::string> opaqueFactors;
    // Trip-count multipliers per axis.
    std::vector<AxisId> ceilFactors;

    std::string
    render(const Chain &chain) const
    {
        std::vector<AxisId> tiles = tileFactors;
        std::vector<AxisId> ceils = ceilFactors;
        std::vector<std::string> parts;

        // Cancel T_x against ceil(X/T_x) -> X (exact when T_x | X; the
        // paper writes Table III in this divisible form).
        for (AxisId tile : tileFactors) {
            auto it = std::find(ceils.begin(), ceils.end(), tile);
            if (it != ceils.end()) {
                parts.push_back(extentSymbol(chain, tile));
                ceils.erase(it);
                tiles.erase(std::find(tiles.begin(), tiles.end(), tile));
            }
        }
        for (AxisId tile : tiles) {
            parts.push_back(tileSymbol(chain, tile));
        }
        for (const std::string &opaque : opaqueFactors) {
            parts.push_back(opaque);
        }
        for (AxisId axis : ceils) {
            parts.push_back("ceil(" + extentSymbol(chain, axis) + "/" +
                            tileSymbol(chain, axis) + ")");
        }
        if (parts.empty()) {
            return "1";
        }
        std::ostringstream oss;
        for (std::size_t i = 0; i < parts.size(); ++i) {
            if (i != 0) {
                oss << "*";
            }
            oss << parts[i];
        }
        return oss.str();
    }
};

/** Footprint factors of one tensor (tiles or affine strings). */
void
footprintFactors(const Chain &chain, int tensorId, Product &product)
{
    const ir::TensorDecl &tensor =
        chain.tensors()[static_cast<std::size_t>(tensorId)];
    for (const ir::AccessDim &dim : tensor.dims) {
        if (dim.terms.empty()) {
            continue; // constant dimension: factor 1
        }
        if (dim.terms.size() == 1 && dim.terms[0].coeff == 1) {
            const AxisId axis = dim.terms[0].axis;
            if (isBlocked(chain, axis)) {
                product.tileFactors.push_back(axis);
            } else {
                product.opaqueFactors.push_back(
                    extentSymbol(chain, axis));
            }
            continue;
        }
        // Affine (halo) dimension: 1 + sum coeff*(T-1) rendered opaque.
        std::ostringstream oss;
        oss << "(1";
        for (const ir::AccessTerm &term : dim.terms) {
            oss << "+";
            if (term.coeff != 1) {
                oss << term.coeff << "*";
            }
            oss << "("
                << (isBlocked(chain, term.axis)
                        ? tileSymbol(chain, term.axis)
                        : extentSymbol(chain, term.axis))
                << "-1)";
        }
        oss << ")";
        product.opaqueFactors.push_back(oss.str());
    }
}

} // namespace

std::string
symbolicFootprint(const Chain &chain, int tensorId)
{
    CHIMERA_CHECK(tensorId >= 0 &&
                      tensorId < static_cast<int>(chain.tensors().size()),
                  "tensor id out of range");
    Product product;
    footprintFactors(chain, tensorId, product);
    return product.render(chain);
}

std::vector<std::string>
symbolicMovement(const Chain &chain, const std::vector<AxisId> &perm)
{
    validatePermutation(chain, perm);

    std::vector<std::string> result(chain.tensors().size(),
                                    "0 (on-chip)");
    std::vector<AxisId> activePerm = perm;
    for (std::size_t opIdx = 0; opIdx < chain.ops().size(); ++opIdx) {
        const ir::OpDecl &op = chain.ops()[opIdx];
        for (int t : op.tensorIds) {
            const ir::TensorDecl &tensor =
                chain.tensors()[static_cast<std::size_t>(t)];
            if (tensor.kind == ir::TensorKind::Intermediate) {
                continue;
            }
            Product product;
            footprintFactors(chain, t, product);
            bool keepReuse = true;
            for (auto it = activePerm.rbegin(); it != activePerm.rend();
                 ++it) {
                const AxisId axis = *it;
                if (!op.usesLoop(axis) || !isBlocked(chain, axis)) {
                    continue;
                }
                if (tensor.usesAxis(axis)) {
                    keepReuse = false;
                }
                if (!keepReuse) {
                    product.ceilFactors.push_back(axis);
                }
            }
            result[static_cast<std::size_t>(t)] = product.render(chain);
        }
        for (AxisId axis : chain.privateAxesOf(static_cast<int>(opIdx))) {
            activePerm.erase(
                std::remove(activePerm.begin(), activePerm.end(), axis),
                activePerm.end());
        }
    }
    return result;
}

} // namespace chimera::model
