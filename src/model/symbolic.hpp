#pragma once

/**
 * @file
 * Symbolic data-movement formulas: the closed-form expressions of the
 * paper's Table III, derived mechanically from Algorithm 1 instead of
 * evaluated numerically. For each IO tensor under a block order, the
 * movement is
 *
 *     DM = (tile footprint) * prod(ceil(L_i / T_i) over moving loops)
 *
 * and whenever a plain footprint factor T_x meets its own trip count
 * ceil(X/T_x), the product cancels to the full extent X — which is how
 * the paper writes `DM_A = M*K*ceil(L/T_L)`. Used by the Table III
 * bench and handy for teaching/debugging the model.
 */

#include <string>
#include <vector>

#include "ir/chain.hpp"

namespace chimera::model {

/**
 * Per-tensor symbolic movement expressions under @p perm, assuming
 * every reorderable axis is blocked (tile < extent) and pinned axes run
 * untiled. Intermediates yield "0 (on-chip)".
 *
 * @return One expression per chain tensor, e.g. "M*K*ceil(L/T_l)".
 */
std::vector<std::string>
symbolicMovement(const ir::Chain &chain,
                 const std::vector<ir::AxisId> &perm);

/** Symbolic tile footprint of one tensor, e.g. "T_m*T_k". */
std::string symbolicFootprint(const ir::Chain &chain, int tensorId);

} // namespace chimera::model
