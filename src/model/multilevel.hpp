#pragma once

/**
 * @file
 * Multi-level memory-hierarchy cost model (§IV-C, Equations 2 and 3).
 *
 * A machine is described as D levels of on-chip memory between the
 * compute units and off-chip DRAM. Level 0 is the innermost (registers /
 * L0 buffers); each level d has a capacity and the bandwidth of the link
 * that fills it from level d+1 (the link above level D-1 is DRAM).
 *
 * For a candidate schedule the planner supplies one tile vector per
 * level (S_0 <= S_1 <= ... elementwise). The data movement into level d
 * is Algorithm 1 evaluated with S_d; the stage cost is DV_d / bw_d
 * (Eq. 2) and the pipeline objective is the max over stages and the
 * compute stage (Eq. 3 with compute included, which is how the simulated
 * GPU/NPU backends turn the model into an execution-time estimate).
 */

#include <string>
#include <vector>

#include "model/data_movement.hpp"

namespace chimera::model {

/**
 * Ownership of a memory level within the core/cache topology.
 *
 * PerCore: every core has a private instance; capacityBytes and
 * bandwidthBytesPerSec describe ONE instance, so active workers add
 * capacity and fill bandwidth to the machine aggregate.
 *
 * Shared: one machine-wide instance; capacityBytes is the total that
 * concurrent workers divide between their working sets and
 * bandwidthBytesPerSec is the total, contended fill rate (it does not
 * scale with the worker count — that is the contention charge).
 *
 * Machines with cores == 1 (the paper's device-level GPU/NPU models)
 * behave identically under either scope, so the seed machines keep
 * their original numbers.
 */
enum class LevelScope
{
    PerCore,
    Shared,
};

/** One on-chip memory level. */
struct MemoryLevel
{
    std::string name;

    /** Usable capacity in bytes for the chain's working set. */
    double capacityBytes = 0.0;

    /** Bandwidth in bytes/second of the link filling this level. */
    double bandwidthBytesPerSec = 0.0;

    /** Per-core private instance or machine-wide shared (see above). */
    LevelScope scope = LevelScope::PerCore;
};

/** Machine description consumed by the multi-level model. */
struct MachineModel
{
    std::string name;

    /** Levels ordered innermost (level 0) to outermost. */
    std::vector<MemoryLevel> levels;

    /** Peak compute throughput in FLOP/s of the dedicated units. */
    double peakFlops = 0.0;

    /**
     * Fraction of peakFlops a well-scheduled micro kernel sustains
     * (pipeline efficiency); used by the execution-time estimate.
     */
    double computeEfficiency = 1.0;

    /**
     * Number of independent compute cores executing blocks. peakFlops
     * is the aggregate over all of them; a run on A <= cores active
     * workers sustains peakFlops * A / cores.
     */
    int cores = 1;

    /** True when the model carries at least one memory level. */
    bool hasTopology() const { return !levels.empty(); }
};

/**
 * Active workers the machine can actually run concurrently: threads
 * clamped to [1, cores]. threads <= 0 means every core participates,
 * which is the historical assumption of the cores-scaled estimate.
 */
int activeWorkers(const MachineModel &machine, int threads);

/**
 * The capacity budget one of @p threads workers may claim at @p level:
 * the full instance for PerCore levels, capacity / activeWorkers for
 * Shared levels (every concurrent worker keeps its own working set
 * resident in the shared cache).
 */
double perWorkerCapacityBytes(const MemoryLevel &level,
                              const MachineModel &machine, int threads);

/**
 * The tightest shared-level per-worker capacity of @p machine at
 * @p threads workers; +infinity when the machine has no shared levels.
 * The single-level planner clamps its budget to this, which is how an
 * LLC-pressured shape gets smaller tiles at higher thread counts.
 */
double minSharedPerWorkerCapacityBytes(const MachineModel &machine,
                                       int threads);

/**
 * @p capacityBytes clamped to one worker's tightest shared-level share
 * of @p machine; passes through unchanged with no topology or a single
 * worker. One definition shared by the planner's tile-solver budget
 * and the SB02 static workspace rule, so the two can never disagree on
 * what a worker may hold resident.
 */
double clampedPerWorkerBudgetBytes(double capacityBytes,
                                   const MachineModel &machine, int threads);

/** Per-level schedule of one candidate plan. */
struct LevelSchedule
{
    /** Block execution order for this level, outermost first. */
    std::vector<ir::AxisId> perm;

    /** Tile sizes for this level, indexed by axis. */
    std::vector<std::int64_t> tiles;
};

/** Cost breakdown returned by evaluateMultiLevel. */
struct MultiLevelCost
{
    /** DV_d in bytes for every level, innermost first. */
    std::vector<double> volumeBytes;

    /** Cost_d = DV_d / bw_d in seconds for every level. */
    std::vector<double> stageSeconds;

    /** MU_d in bytes for every level. */
    std::vector<std::int64_t> memUsageBytes;

    /** Compute stage time in seconds (effective FLOPs / peak). */
    double computeSeconds = 0.0;

    /** max(stageSeconds..., computeSeconds): the Eq.-3 objective. */
    double boundSeconds = 0.0;

    /** True when every MU_d fits its level's (per-worker) capacity. */
    bool feasible = false;
};

/**
 * Evaluates Equations 2-3 for one candidate schedule.
 *
 * With @p threads > 1 the estimate is thread-aware: A =
 * activeWorkers(machine, threads) workers each hold one tile working
 * set, so PerCore levels check MU_d against one private instance and
 * fill through A parallel links (stage cost DV_d / (bw_d * A)), while
 * Shared levels check MU_d against a capacity / A share and fill
 * through the single contended link (stage cost DV_d / bw_d — shared
 * bandwidth does not scale with workers). The compute stage sustains
 * peakFlops * A / cores. threads <= 0 (the default) assumes every core
 * participates, matching the original cores-scaled estimate; on the
 * paper's cores == 1 device models any threads value reproduces the
 * original single-core §IV-C estimate exactly.
 *
 * @param chain     Operator chain.
 * @param machine   Machine description (levels innermost first).
 * @param schedules One LevelSchedule per machine level, innermost first.
 * @param options   Passed through to Algorithm 1.
 * @param threads   Worker count the schedule is evaluated for;
 *                  <= 0 means all cores.
 */
MultiLevelCost evaluateMultiLevel(const ir::Chain &chain,
                                  const MachineModel &machine,
                                  const std::vector<LevelSchedule> &schedules,
                                  const ModelOptions &options = {},
                                  int threads = 0);

/** Arithmetic intensity (FLOPs per DRAM byte) of the outermost level. */
double arithmeticIntensity(const ir::Chain &chain,
                           const MultiLevelCost &cost);

} // namespace chimera::model
