#pragma once

/**
 * @file
 * Multi-level memory-hierarchy cost model (§IV-C, Equations 2 and 3).
 *
 * A machine is described as D levels of on-chip memory between the
 * compute units and off-chip DRAM. Level 0 is the innermost (registers /
 * L0 buffers); each level d has a capacity and the bandwidth of the link
 * that fills it from level d+1 (the link above level D-1 is DRAM).
 *
 * For a candidate schedule the planner supplies one tile vector per
 * level (S_0 <= S_1 <= ... elementwise). The data movement into level d
 * is Algorithm 1 evaluated with S_d; the stage cost is DV_d / bw_d
 * (Eq. 2) and the pipeline objective is the max over stages and the
 * compute stage (Eq. 3 with compute included, which is how the simulated
 * GPU/NPU backends turn the model into an execution-time estimate).
 */

#include <string>
#include <vector>

#include "model/data_movement.hpp"

namespace chimera::model {

/** One on-chip memory level. */
struct MemoryLevel
{
    std::string name;

    /** Usable capacity in bytes for the chain's working set. */
    double capacityBytes = 0.0;

    /** Bandwidth in bytes/second of the link filling this level. */
    double bandwidthBytesPerSec = 0.0;
};

/** Machine description consumed by the multi-level model. */
struct MachineModel
{
    std::string name;

    /** Levels ordered innermost (level 0) to outermost. */
    std::vector<MemoryLevel> levels;

    /** Peak compute throughput in FLOP/s of the dedicated units. */
    double peakFlops = 0.0;

    /**
     * Fraction of peakFlops a well-scheduled micro kernel sustains
     * (pipeline efficiency); used by the execution-time estimate.
     */
    double computeEfficiency = 1.0;

    /** Number of independent compute cores executing blocks. */
    int cores = 1;
};

/** Per-level schedule of one candidate plan. */
struct LevelSchedule
{
    /** Block execution order for this level, outermost first. */
    std::vector<ir::AxisId> perm;

    /** Tile sizes for this level, indexed by axis. */
    std::vector<std::int64_t> tiles;
};

/** Cost breakdown returned by evaluateMultiLevel. */
struct MultiLevelCost
{
    /** DV_d in bytes for every level, innermost first. */
    std::vector<double> volumeBytes;

    /** Cost_d = DV_d / bw_d in seconds for every level. */
    std::vector<double> stageSeconds;

    /** MU_d in bytes for every level. */
    std::vector<std::int64_t> memUsageBytes;

    /** Compute stage time in seconds (effective FLOPs / peak). */
    double computeSeconds = 0.0;

    /** max(stageSeconds..., computeSeconds): the Eq.-3 objective. */
    double boundSeconds = 0.0;

    /** True when every MU_d fits its level's capacity. */
    bool feasible = false;
};

/**
 * Evaluates Equations 2-3 for one candidate schedule.
 *
 * @param chain     Operator chain.
 * @param machine   Machine description (levels innermost first).
 * @param schedules One LevelSchedule per machine level, innermost first.
 * @param options   Passed through to Algorithm 1.
 */
MultiLevelCost evaluateMultiLevel(const ir::Chain &chain,
                                  const MachineModel &machine,
                                  const std::vector<LevelSchedule> &schedules,
                                  const ModelOptions &options = {});

/** Arithmetic intensity (FLOPs per DRAM byte) of the outermost level. */
double arithmeticIntensity(const ir::Chain &chain,
                           const MultiLevelCost &cost);

} // namespace chimera::model
