#include "model/multilevel.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace chimera::model {

int
activeWorkers(const MachineModel &machine, int threads)
{
    const int cores = std::max(1, machine.cores);
    if (threads <= 0) {
        return cores; // default: every core participates
    }
    return std::min(threads, cores);
}

double
perWorkerCapacityBytes(const MemoryLevel &level, const MachineModel &machine,
                       int threads)
{
    if (level.scope == LevelScope::PerCore) {
        return level.capacityBytes;
    }
    return level.capacityBytes /
           static_cast<double>(activeWorkers(machine, threads));
}

double
minSharedPerWorkerCapacityBytes(const MachineModel &machine, int threads)
{
    double budget = std::numeric_limits<double>::infinity();
    for (const MemoryLevel &level : machine.levels) {
        if (level.scope == LevelScope::Shared) {
            budget = std::min(
                budget, perWorkerCapacityBytes(level, machine, threads));
        }
    }
    return budget;
}

double
clampedPerWorkerBudgetBytes(double capacityBytes, const MachineModel &machine,
                            int threads)
{
    if (!machine.hasTopology() || threads <= 1) {
        return capacityBytes;
    }
    return std::min(capacityBytes,
                    minSharedPerWorkerCapacityBytes(machine, threads));
}

MultiLevelCost
evaluateMultiLevel(const ir::Chain &chain, const MachineModel &machine,
                   const std::vector<LevelSchedule> &schedules,
                   const ModelOptions &options, int threads)
{
    CHIMERA_CHECK(!machine.levels.empty(), "machine has no memory levels");
    CHIMERA_CHECK(schedules.size() == machine.levels.size(),
                  "one schedule per memory level is required");

    const int active = activeWorkers(machine, threads);

    MultiLevelCost cost;
    cost.feasible = true;

    for (std::size_t d = 0; d < schedules.size(); ++d) {
        const DataMovement dm = computeDataMovement(
            chain, schedules[d].perm, schedules[d].tiles, options);
        const MemoryLevel &level = machine.levels[d];
        cost.volumeBytes.push_back(dm.volumeBytes);
        cost.memUsageBytes.push_back(dm.memUsageBytes);
        CHIMERA_CHECK(level.bandwidthBytesPerSec > 0.0,
                      "memory level bandwidth must be positive");
        // PerCore links replicate per active worker (each core fills
        // its own private instance, so the aggregate rate scales with
        // A); the Shared link is one contended resource whose total
        // rate A workers must split between them.
        const double aggregateBw =
            level.scope == LevelScope::PerCore
                ? level.bandwidthBytesPerSec * static_cast<double>(active)
                : level.bandwidthBytesPerSec;
        cost.stageSeconds.push_back(dm.volumeBytes / aggregateBw);
        // Every worker keeps its own tile working set resident: one
        // private instance each at PerCore levels, a capacity / A share
        // each at Shared levels.
        if (static_cast<double>(dm.memUsageBytes) >
            perWorkerCapacityBytes(level, machine, threads)) {
            cost.feasible = false;
        }
    }

    // Compute stage: effective FLOPs (including halo re-computation at
    // the innermost tiling) over sustained throughput of the active
    // workers' share of the machine peak.
    const std::vector<std::int64_t> extents = chain.fullExtents();
    double iters = 0.0;
    for (const ir::OpDecl &op : chain.ops()) {
        iters += op.effectiveIters(extents, schedules.front().tiles);
    }
    const double sustained =
        machine.peakFlops * std::max(1e-6, machine.computeEfficiency) *
        (static_cast<double>(active) /
         static_cast<double>(std::max(1, machine.cores)));
    cost.computeSeconds = 2.0 * iters / sustained;

    cost.boundSeconds = cost.computeSeconds;
    for (double stage : cost.stageSeconds) {
        cost.boundSeconds = std::max(cost.boundSeconds, stage);
    }
    return cost;
}

double
arithmeticIntensity(const ir::Chain &chain, const MultiLevelCost &cost)
{
    CHIMERA_CHECK(!cost.volumeBytes.empty(), "cost has no levels");
    const double dramBytes = cost.volumeBytes.back();
    if (dramBytes <= 0.0) {
        return 0.0;
    }
    return chain.totalFlops() / dramBytes;
}

} // namespace chimera::model
