#include "model/multilevel.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace chimera::model {

MultiLevelCost
evaluateMultiLevel(const ir::Chain &chain, const MachineModel &machine,
                   const std::vector<LevelSchedule> &schedules,
                   const ModelOptions &options)
{
    CHIMERA_CHECK(!machine.levels.empty(), "machine has no memory levels");
    CHIMERA_CHECK(schedules.size() == machine.levels.size(),
                  "one schedule per memory level is required");

    MultiLevelCost cost;
    cost.feasible = true;

    for (std::size_t d = 0; d < schedules.size(); ++d) {
        const DataMovement dm = computeDataMovement(
            chain, schedules[d].perm, schedules[d].tiles, options);
        const MemoryLevel &level = machine.levels[d];
        cost.volumeBytes.push_back(dm.volumeBytes);
        cost.memUsageBytes.push_back(dm.memUsageBytes);
        CHIMERA_CHECK(level.bandwidthBytesPerSec > 0.0,
                      "memory level bandwidth must be positive");
        // The per-core link bandwidth fills one core's working set; with
        // multiple cores each core moves its own share of the blocks.
        cost.stageSeconds.push_back(
            dm.volumeBytes /
            (level.bandwidthBytesPerSec *
             static_cast<double>(std::max(1, machine.cores))));
        if (static_cast<double>(dm.memUsageBytes) > level.capacityBytes) {
            cost.feasible = false;
        }
    }

    // Compute stage: effective FLOPs (including halo re-computation at
    // the innermost tiling) over sustained throughput.
    const std::vector<std::int64_t> extents = chain.fullExtents();
    double iters = 0.0;
    for (const ir::OpDecl &op : chain.ops()) {
        iters += op.effectiveIters(extents, schedules.front().tiles);
    }
    const double sustained =
        machine.peakFlops * std::max(1e-6, machine.computeEfficiency);
    cost.computeSeconds = 2.0 * iters / sustained;

    cost.boundSeconds = cost.computeSeconds;
    for (double stage : cost.stageSeconds) {
        cost.boundSeconds = std::max(cost.boundSeconds, stage);
    }
    return cost;
}

double
arithmeticIntensity(const ir::Chain &chain, const MultiLevelCost &cost)
{
    CHIMERA_CHECK(!cost.volumeBytes.empty(), "cost has no levels");
    const double dramBytes = cost.volumeBytes.back();
    if (dramBytes <= 0.0) {
        return 0.0;
    }
    return chain.totalFlops() / dramBytes;
}

} // namespace chimera::model
