#include "hw/machines.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace chimera::hw {

model::MachineModel
cascadeLakeCpu()
{
    model::MachineModel machine;
    machine.name = "XeonGold6240";
    machine.levels = {
        // name, usable capacity (bytes), fill bandwidth (bytes/s).
        // L1d/L2 are per-core private instances, L3 is socket-shared;
        // with cores = 1 (the paper's device-level model) the scopes
        // are documentation only and every seed figure is unchanged.
        {"L1d", 32.0 * 1024, 400e9, model::LevelScope::PerCore},
        {"L2", 1.0 * 1024 * 1024, 200e9, model::LevelScope::PerCore},
        {"L3", 24.75 * 1024 * 1024, 131e9, model::LevelScope::Shared},
    };
    machine.peakFlops = 12e12; // fp16 AVX-512 peak (Table I)
    machine.computeEfficiency = 0.75;
    machine.cores = 1;
    return machine;
}

model::MachineModel
multicoreCpuTopology(int cores)
{
    model::MachineModel machine;
    machine.name = "XeonGold6240-multicore";
    machine.cores = cores > 0 ? cores : 18;
    machine.levels = {
        // Private levels: one instance per core, per-instance fill
        // bandwidth (active workers add bandwidth). Shared levels: the
        // socket totals that concurrent workers divide (capacity) and
        // contend for (bandwidth).
        {"L1d", 32.0 * 1024, 400e9, model::LevelScope::PerCore},
        {"L2", 1.0 * 1024 * 1024, 200e9, model::LevelScope::PerCore},
        {"L3", 24.75 * 1024 * 1024, 131e9, model::LevelScope::Shared},
        {"DRAM", 1.0 * 1024 * 1024 * 1024 * 1024, 94e9,
         model::LevelScope::Shared},
    };
    // Per-socket peak across all cores; one worker sustains 1/cores.
    machine.peakFlops = 12e12;
    machine.computeEfficiency = 0.75;
    return machine;
}

model::MachineModel
a100Gpu()
{
    model::MachineModel machine;
    machine.name = "A100";
    machine.levels = {
        // Shared memory per SM aggregated across 108 SMs; the model
        // plans per-SM blocks, so capacity is per SM while bandwidth is
        // the aggregate fill rate.
        {"SMEM", 164.0 * 1024, 19500e9},
        {"L2", 40.0 * 1024 * 1024, 7000e9},
    };
    machine.peakFlops = 312e12; // Tensor Core fp16 (Table I)
    machine.computeEfficiency = 0.6;
    machine.cores = 1; // bandwidths are aggregate
    // The link above the last level is HBM at 1555 GB/s; expressed as a
    // third pseudo-level so the Eq.-2 stage for DRAM exists.
    machine.levels.push_back({"HBM", 40.0 * 1024 * 1024, 1555e9});
    return machine;
}

model::MachineModel
ascend910Npu()
{
    model::MachineModel machine;
    machine.name = "Ascend910";
    machine.levels = {
        {"L0", 64.0 * 1024, 4000e9},
        {"L1", 1.0 * 1024 * 1024, 2000e9},
        {"HBM", 32.0 * 1024 * 1024, 1200e9},
    };
    machine.peakFlops = 320e12; // cube unit fp16 (Table I)
    machine.computeEfficiency = 0.6;
    machine.cores = 1;
    return machine;
}

UnifiedBufferSpec
ascend910UnifiedBuffer()
{
    return UnifiedBufferSpec{256.0 * 1024, 1000e9};
}

double
rooflineFlops(const model::MachineModel &machine, double flopsPerDramByte)
{
    CHIMERA_CHECK(!machine.levels.empty(), "machine has no levels");
    const double dramBw = machine.levels.back().bandwidthBytesPerSec;
    return std::min(machine.peakFlops, flopsPerDramByte * dramBw);
}

double
machineBalance(const model::MachineModel &machine)
{
    CHIMERA_CHECK(!machine.levels.empty(), "machine has no levels");
    return machine.peakFlops / machine.levels.back().bandwidthBytesPerSec;
}

} // namespace chimera::hw
