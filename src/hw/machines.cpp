#include "hw/machines.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace chimera::hw {

model::MachineModel
cascadeLakeCpu()
{
    model::MachineModel machine;
    machine.name = "XeonGold6240";
    machine.levels = {
        // name, usable capacity (bytes), fill bandwidth (bytes/s)
        {"L1d", 32.0 * 1024, 400e9},
        {"L2", 1.0 * 1024 * 1024, 200e9},
        {"L3", 24.75 * 1024 * 1024, 131e9},
    };
    machine.peakFlops = 12e12; // fp16 AVX-512 peak (Table I)
    machine.computeEfficiency = 0.75;
    machine.cores = 1;
    return machine;
}

model::MachineModel
a100Gpu()
{
    model::MachineModel machine;
    machine.name = "A100";
    machine.levels = {
        // Shared memory per SM aggregated across 108 SMs; the model
        // plans per-SM blocks, so capacity is per SM while bandwidth is
        // the aggregate fill rate.
        {"SMEM", 164.0 * 1024, 19500e9},
        {"L2", 40.0 * 1024 * 1024, 7000e9},
    };
    machine.peakFlops = 312e12; // Tensor Core fp16 (Table I)
    machine.computeEfficiency = 0.6;
    machine.cores = 1; // bandwidths are aggregate
    // The link above the last level is HBM at 1555 GB/s; expressed as a
    // third pseudo-level so the Eq.-2 stage for DRAM exists.
    machine.levels.push_back({"HBM", 40.0 * 1024 * 1024, 1555e9});
    return machine;
}

model::MachineModel
ascend910Npu()
{
    model::MachineModel machine;
    machine.name = "Ascend910";
    machine.levels = {
        {"L0", 64.0 * 1024, 4000e9},
        {"L1", 1.0 * 1024 * 1024, 2000e9},
        {"HBM", 32.0 * 1024 * 1024, 1200e9},
    };
    machine.peakFlops = 320e12; // cube unit fp16 (Table I)
    machine.computeEfficiency = 0.6;
    machine.cores = 1;
    return machine;
}

UnifiedBufferSpec
ascend910UnifiedBuffer()
{
    return UnifiedBufferSpec{256.0 * 1024, 1000e9};
}

double
rooflineFlops(const model::MachineModel &machine, double flopsPerDramByte)
{
    CHIMERA_CHECK(!machine.levels.empty(), "machine has no levels");
    const double dramBw = machine.levels.back().bandwidthBytesPerSec;
    return std::min(machine.peakFlops, flopsPerDramByte * dramBw);
}

double
machineBalance(const model::MachineModel &machine)
{
    CHIMERA_CHECK(!machine.levels.empty(), "machine has no levels");
    return machine.peakFlops / machine.levels.back().bandwidthBytesPerSec;
}

} // namespace chimera::hw
