#pragma once

/**
 * @file
 * Machine descriptions of the paper's three evaluation platforms
 * (Table I) for the multi-level analytical model.
 *
 * Bandwidths are aggregate device bandwidths of the link that fills
 * each level; peakFlops is the dedicated-unit peak (fp16 for the
 * accelerators). The GPU and NPU are *simulated* through these models
 * (DESIGN.md §2): the paper's own Eq. 2-3 cost function turns planned
 * schedules into execution-time estimates, which preserves the relative
 * orderings its evaluation reports.
 */

#include "model/multilevel.hpp"

namespace chimera::hw {

/** Intel Xeon Gold 6240-like CPU (AVX-512), per-socket aggregates. */
model::MachineModel cascadeLakeCpu();

/**
 * Thread-aware core/cache topology of a Xeon-class bench host: private
 * per-core L1d/L2 (capacity and fill bandwidth per instance), a shared
 * LLC whose capacity concurrent workers divide, and a shared DRAM link
 * whose bandwidth they contend for. Used by the thread-aware planner
 * (PlannerOptions::topology) and the Eq. 2-3 multi-thread estimate;
 * @p cores bounds the workers the model lets run concurrently (<= 0
 * defaults to 18, the Xeon Gold 6240 core count).
 */
model::MachineModel multicoreCpuTopology(int cores = 0);

/** NVIDIA A100-like Tensor Core GPU. */
model::MachineModel a100Gpu();

/**
 * Huawei Ascend 910-like NPU. The Unified Buffer (UB) that carries
 * intermediate results between the cube unit and the vector unit is
 * exposed separately because it bottlenecks large fused GEMM chains
 * (§VI-B "NPU Performance").
 */
model::MachineModel ascend910Npu();

/** UB capacity/bandwidth used by the NPU backend's extra constraint. */
struct UnifiedBufferSpec
{
    double capacityBytes = 256.0 * 1024;
    double bandwidthBytesPerSec = 1000e9;
};

UnifiedBufferSpec ascend910UnifiedBuffer();

/** Roofline-attainable FLOP/s at a given arithmetic intensity. */
double rooflineFlops(const model::MachineModel &machine,
                     double flopsPerDramByte);

/** The Table I peak-performance / memory-bandwidth ratio (FLOP/byte). */
double machineBalance(const model::MachineModel &machine);

} // namespace chimera::hw
