#include "hw/accelerator_sim.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace chimera::hw {

using model::MachineModel;
using plan::MultiLevelPlan;
using plan::PlannerOptions;

namespace {

/** Multi-level plan + Eq.-3 bound for one chain. */
MultiLevelPlan
planOn(const ir::Chain &chain, const MachineModel &machine)
{
    PlannerOptions options;
    options.constraints = plan::alphaConstraints(chain, 16);
    return plan::planChainMultiLevel(chain, machine, options);
}

/**
 * Fixed-order fused proxy: canonical order (declaration order of the
 * axes, which puts reduction/consumer axes innermost) solved per level.
 */
double
fixedOrderBound(const ir::Chain &chain, const MachineModel &machine)
{
    // Canonical executable order: axes indexing an intermediate first
    // (in declaration order), then reduction/consumer-only axes, then
    // the pinned kernel axes. Fixed once, never searched — the template
    // library behaviour the paper contrasts against.
    std::vector<ir::AxisId> perm;
    auto touchesIntermediate = [&](ir::AxisId axis) {
        for (const ir::TensorDecl &tensor : chain.tensors()) {
            if (tensor.kind == ir::TensorKind::Intermediate &&
                tensor.usesAxis(axis)) {
                return true;
            }
        }
        return false;
    };
    for (ir::AxisId a : chain.reorderableAxes()) {
        if (touchesIntermediate(a)) {
            perm.push_back(a);
        }
    }
    for (ir::AxisId a : chain.reorderableAxes()) {
        if (!touchesIntermediate(a)) {
            perm.push_back(a);
        }
    }
    for (ir::AxisId a : chain.pinnedAxes()) {
        perm.push_back(a);
    }
    CHIMERA_ASSERT(model::isExecutableOrder(chain, perm),
                   "canonical order must be executable");

    std::vector<model::LevelSchedule> schedules(machine.levels.size());
    PlannerOptions options;
    options.constraints = plan::alphaConstraints(chain, 16);
    for (std::size_t d = machine.levels.size(); d-- > 0;) {
        options.memCapacityBytes = machine.levels[d].capacityBytes;
        const plan::ExecutionPlan levelPlan =
            plan::planFixedOrder(chain, perm, options);
        schedules[d].perm = levelPlan.perm;
        schedules[d].tiles = levelPlan.tiles;
        for (ir::AxisId a = 0; a < chain.numAxes(); ++a) {
            options.constraints.maxTile[a] =
                levelPlan.tiles[static_cast<std::size_t>(a)];
        }
    }
    return model::evaluateMultiLevel(chain, machine, schedules)
        .boundSeconds;
}

} // namespace

namespace {

/** Accelerators run fp16 (Table I peaks are fp16). */
constexpr int kAccelElemBytes = 2;

ir::Chain
fp16(ir::Chain chain)
{
    chain.setElementSize(kAccelElemBytes);
    return chain;
}

} // namespace

AcceleratorComparison
simulateGemmChain(const ir::GemmChainConfig &config,
                  const MachineModel &machine,
                  const std::optional<UnifiedBufferSpec> &ub)
{
    AcceleratorComparison result;
    const ir::Chain fused = fp16(ir::makeGemmChain(config));
    const MultiLevelPlan fusedPlan = planOn(fused, machine);
    result.chimeraSeconds = fusedPlan.cost.boundSeconds;
    result.chimeraDramBytes = fusedPlan.cost.volumeBytes.back();
    result.chimeraOrder =
        plan::orderString(fused, fusedPlan.levels.back().perm);

    result.fixedOrderSeconds = fixedOrderBound(fused, machine);

    // Unfused: C spills to DRAM between the two GEMMs.
    const ir::Chain gemm1 = fp16(ir::makeSingleGemm(
        config.batch, config.m, config.l, config.k, "gemm1"));
    const ir::Chain gemm2 = fp16(ir::makeSingleGemm(
        config.batch, config.m, config.n, config.l, "gemm2"));
    const MultiLevelPlan plan1 = planOn(gemm1, machine);
    const MultiLevelPlan plan2 = planOn(gemm2, machine);
    result.unfusedSeconds =
        plan1.cost.boundSeconds + plan2.cost.boundSeconds;
    result.unfusedDramBytes =
        plan1.cost.volumeBytes.back() + plan2.cost.volumeBytes.back();

    if (ub.has_value()) {
        // Every intermediate element is staged through the UB between
        // the cube unit and the consumer (§VI-B).
        const double interBytes = kAccelElemBytes *
                                  static_cast<double>(config.batch) *
                                  static_cast<double>(config.m) *
                                  static_cast<double>(config.l);
        result.unifiedBufferSeconds =
            interBytes / ub->bandwidthBytesPerSec;
        result.chimeraSeconds =
            std::max(result.chimeraSeconds, result.unifiedBufferSeconds);
    }
    return result;
}

AcceleratorComparison
simulateConvChain(const ir::ConvChainConfig &config,
                  const MachineModel &machine)
{
    AcceleratorComparison result;
    const ir::Chain fused = fp16(ir::makeConvChain(config));
    const MultiLevelPlan fusedPlan = planOn(fused, machine);
    result.chimeraSeconds = fusedPlan.cost.boundSeconds;
    result.chimeraDramBytes = fusedPlan.cost.volumeBytes.back();
    result.chimeraOrder =
        plan::orderString(fused, fusedPlan.levels.back().perm);

    result.fixedOrderSeconds = fixedOrderBound(fused, machine);

    const ir::Chain conv1 = fp16(ir::makeSingleConv(
        config.batch, config.ic, config.h, config.w, config.oc1, config.k1,
        config.stride1, config.effectivePad1(), "conv1"));
    const ir::Chain conv2 = fp16(ir::makeSingleConv(
        config.batch, config.oc1, config.oh1(), config.ow1(), config.oc2,
        config.k2, config.stride2, config.effectivePad2(), "conv2"));
    const MultiLevelPlan plan1 = planOn(conv1, machine);
    const MultiLevelPlan plan2 = planOn(conv2, machine);
    result.unfusedSeconds =
        plan1.cost.boundSeconds + plan2.cost.boundSeconds;
    result.unfusedDramBytes =
        plan1.cost.volumeBytes.back() + plan2.cost.volumeBytes.back();
    return result;
}

} // namespace chimera::hw
