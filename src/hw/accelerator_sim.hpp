#pragma once

/**
 * @file
 * Simulated accelerator backends (DESIGN.md §2).
 *
 * The paper evaluates fused kernels on an A100 GPU and an Ascend 910
 * NPU. Without that hardware, this module runs the *same planning
 * machinery* against the machine models of src/hw and derives execution
 * times from the paper's own pipeline cost (Eq. 3: max over memory
 * stages and the compute stage). Three configurations are compared per
 * workload, mirroring the paper's baselines:
 *
 *  - chimera:     fused chain, planner-chosen order and tiles;
 *  - fixedOrder:  fused chain, pinned canonical order (the
 *                 template-library/BOLT proxy), solved tiles;
 *  - unfused:     each operator planned separately, intermediate
 *                 spilled to DRAM (the library/TBE proxy).
 *
 * For the NPU, the Unified Buffer stage is added: every intermediate
 * element crosses the UB twice (cube unit -> UB -> next op), which
 * reproduces the paper's observation that large GEMM chains bottleneck
 * on the UB.
 */

#include <optional>
#include <string>

#include "hw/machines.hpp"
#include "ir/builders.hpp"
#include "plan/planner.hpp"

namespace chimera::hw {

/** Timing comparison of one workload on one simulated machine. */
struct AcceleratorComparison
{
    double chimeraSeconds = 0.0;
    double fixedOrderSeconds = 0.0;
    double unfusedSeconds = 0.0;

    /** DRAM bytes moved (outermost-level DV). */
    double chimeraDramBytes = 0.0;
    double unfusedDramBytes = 0.0;

    /** Chosen block order of the fused plan (outer level). */
    std::string chimeraOrder;

    /** UB stage time (NPU only; 0 elsewhere). */
    double unifiedBufferSeconds = 0.0;
};

/** Simulates a batch GEMM chain on @p machine. */
AcceleratorComparison
simulateGemmChain(const ir::GemmChainConfig &config,
                  const model::MachineModel &machine,
                  const std::optional<UnifiedBufferSpec> &ub = std::nullopt);

/** Simulates a convolution chain on @p machine. */
AcceleratorComparison
simulateConvChain(const ir::ConvChainConfig &config,
                  const model::MachineModel &machine);

} // namespace chimera::hw
