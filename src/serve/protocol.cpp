#include "serve/protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <system_error>

#ifdef __unix__
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "support/error.hpp"

namespace chimera::serve {

namespace {

/** @name Little-endian primitive append helpers
 *  @{ */
void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU16(std::string &out, std::uint16_t v)
{
    putU8(out, static_cast<std::uint8_t>(v & 0xff));
    putU8(out, static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::string &out, std::uint32_t v)
{
    putU16(out, static_cast<std::uint16_t>(v & 0xffff));
    putU16(out, static_cast<std::uint16_t>(v >> 16));
}

void
putU64(std::string &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

void
putI64(std::string &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

void
putF32(std::string &out, float v)
{
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    putU32(out, bits);
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(out, bits);
}

void
putString(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

void
putTensor(std::string &out, const Tensor &t)
{
    out.append(reinterpret_cast<const char *>(t.data()),
               static_cast<std::size_t>(t.bytes()));
}
/** @} */

/** Bounds-checked little-endian reader over a payload. */
class Cursor
{
  public:
    explicit Cursor(const std::string &payload) : payload_(payload) {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(payload_[pos_++]);
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo |
                                          (static_cast<std::uint16_t>(u8())
                                           << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (static_cast<std::uint32_t>(u16()) << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (static_cast<std::uint64_t>(u32()) << 32);
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    float
    f32()
    {
        const std::uint32_t bits = u32();
        float v = 0.0f;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        need(n);
        std::string out = payload_.substr(pos_, n);
        pos_ += n;
        return out;
    }

    /** Reads @p numel fp32 values into a tensor of @p shape. */
    Tensor
    tensor(std::vector<std::int64_t> shape, std::int64_t numel)
    {
        const std::size_t bytes =
            static_cast<std::size_t>(numel) * sizeof(float);
        need(bytes);
        Tensor t(std::move(shape));
        CHIMERA_CHECK(t.numel() == numel, "tensor shape/numel mismatch");
        std::memcpy(t.data(), payload_.data() + pos_, bytes);
        pos_ += bytes;
        return t;
    }

    /** Rejects trailing bytes: a payload must be consumed exactly. */
    void
    expectEnd() const
    {
        CHIMERA_CHECK(pos_ == payload_.size(),
                      "malformed frame: " +
                          std::to_string(payload_.size() - pos_) +
                          " trailing byte(s)");
    }

  private:
    void
    need(std::size_t n) const
    {
        CHIMERA_CHECK(payload_.size() - pos_ >= n,
                      "malformed frame: truncated payload (need " +
                          std::to_string(n) + " more byte(s) at offset " +
                          std::to_string(pos_) + ")");
    }

    const std::string &payload_;
    std::size_t pos_ = 0;
};

void
putHeader(std::string &out, std::uint32_t magic, MessageType type,
          std::uint64_t id)
{
    putU32(out, magic);
    putU16(out, kProtocolVersion);
    putU16(out, static_cast<std::uint16_t>(type));
    putU64(out, id);
}

/** Reads and validates a payload header; returns (type, id). */
std::pair<MessageType, std::uint64_t>
readHeader(Cursor &cursor, std::uint32_t expectedMagic)
{
    const std::uint32_t magic = cursor.u32();
    CHIMERA_CHECK(magic == expectedMagic,
                  "malformed frame: bad magic 0x" + [magic] {
                      char buf[16];
                      const int n =
                          std::snprintf(buf, sizeof buf, "%08x", magic);
                      return n > 0 ? std::string(buf,
                                                 static_cast<std::size_t>(n))
                                   : std::string("????????");
                  }());
    const std::uint16_t version = cursor.u16();
    CHIMERA_CHECK(version == kProtocolVersion,
                  "unsupported protocol version " +
                      std::to_string(version));
    const std::uint16_t rawType = cursor.u16();
    CHIMERA_CHECK(rawType >= 1 &&
                      rawType <= static_cast<std::uint16_t>(
                                     MessageType::Shutdown),
                  "malformed frame: unknown message type " +
                      std::to_string(rawType));
    return {static_cast<MessageType>(rawType), cursor.u64()};
}

std::uint8_t
epilogueByte(ir::Epilogue e)
{
    switch (e) {
    case ir::Epilogue::None:
        return 0;
    case ir::Epilogue::Relu:
        return 1;
    case ir::Epilogue::Softmax:
        return 2;
    }
    return 0;
}

ir::Epilogue
epilogueFromByte(std::uint8_t b)
{
    CHIMERA_CHECK(b <= 2, "malformed frame: unknown epilogue code " +
                              std::to_string(b));
    return b == 0 ? ir::Epilogue::None
                  : (b == 1 ? ir::Epilogue::Relu : ir::Epilogue::Softmax);
}

} // namespace

std::int64_t
executeNumelA(const ir::GemmChainConfig &c)
{
    return c.batch * c.m * c.k;
}

std::int64_t
executeNumelB(const ir::GemmChainConfig &c)
{
    return c.batch * c.k * c.l;
}

std::int64_t
executeNumelD(const ir::GemmChainConfig &c)
{
    return c.batch * c.l * c.n;
}

std::int64_t
executeNumelE(const ir::GemmChainConfig &c)
{
    return c.batch * c.m * c.n;
}

void
validateExecuteConfig(const ir::GemmChainConfig &config)
{
    const auto checkExtent = [](const char *name, std::int64_t v) {
        CHIMERA_CHECK(v >= 1, std::string("invalid request: extent ") +
                                  name + " must be >= 1, got " +
                                  std::to_string(v));
        CHIMERA_CHECK(v <= kMaxExtent,
                      std::string("invalid request: extent ") + name +
                          " = " + std::to_string(v) + " exceeds the cap " +
                          std::to_string(kMaxExtent));
    };
    checkExtent("batch", config.batch);
    checkExtent("m", config.m);
    checkExtent("n", config.n);
    checkExtent("k", config.k);
    checkExtent("l", config.l);
    if (config.causalMask) {
        CHIMERA_CHECK(config.epilogue == ir::Epilogue::Softmax,
                      "invalid request: causal masking requires the "
                      "softmax epilogue");
        CHIMERA_CHECK(config.m == config.l,
                      "invalid request: causal masking requires m == l");
    }
}

std::string
encodeExecuteRequest(const ExecuteRequest &request)
{
    validateExecuteConfig(request.config);
    std::string out;
    const std::size_t tensorBytes = static_cast<std::size_t>(
        (executeNumelA(request.config) + executeNumelB(request.config) +
         executeNumelD(request.config)) *
        static_cast<std::int64_t>(sizeof(float)));
    out.reserve(64 + tensorBytes);
    putHeader(out, kRequestMagic, MessageType::Execute, request.id);
    putI64(out, request.config.batch);
    putI64(out, request.config.m);
    putI64(out, request.config.n);
    putI64(out, request.config.k);
    putI64(out, request.config.l);
    putU8(out, epilogueByte(request.config.epilogue));
    putU8(out, request.config.causalMask ? 1 : 0);
    putF32(out, request.config.softmaxScale);
    CHIMERA_CHECK(request.a.numel() == executeNumelA(request.config) &&
                      request.b.numel() ==
                          executeNumelB(request.config) &&
                      request.d.numel() == executeNumelD(request.config),
                  "request tensors do not match the configuration");
    putTensor(out, request.a);
    putTensor(out, request.b);
    putTensor(out, request.d);
    return out;
}

std::string
encodeStatsRequest(std::uint64_t id)
{
    std::string out;
    putHeader(out, kRequestMagic, MessageType::Stats, id);
    return out;
}

std::string
encodeShutdownRequest(std::uint64_t id)
{
    std::string out;
    putHeader(out, kRequestMagic, MessageType::Shutdown, id);
    return out;
}

std::string
encodeExecuteResponse(const ExecuteResponse &response)
{
    std::string out;
    out.reserve(64 + (response.status == Status::Ok
                          ? static_cast<std::size_t>(response.e.bytes())
                          : response.error.size()));
    putHeader(out, kResponseMagic, MessageType::Execute, response.id);
    putU8(out, static_cast<std::uint8_t>(response.status));
    if (response.status == Status::Error) {
        putString(out, response.error);
        return out;
    }
    putU32(out, response.batchGroupSize);
    putF64(out, response.serverSeconds);
    putU32(out, static_cast<std::uint32_t>(response.e.rank()));
    for (const std::int64_t dim : response.e.shape()) {
        putI64(out, dim);
    }
    putTensor(out, response.e);
    return out;
}

std::string
encodeStatsResponse(std::uint64_t id, const std::string &text)
{
    std::string out;
    putHeader(out, kResponseMagic, MessageType::Stats, id);
    putU8(out, static_cast<std::uint8_t>(Status::Ok));
    putString(out, text);
    return out;
}

std::string
encodeShutdownResponse(std::uint64_t id)
{
    std::string out;
    putHeader(out, kResponseMagic, MessageType::Shutdown, id);
    putU8(out, static_cast<std::uint8_t>(Status::Ok));
    return out;
}

std::string
encodeErrorResponse(MessageType type, std::uint64_t id,
                    const std::string &message)
{
    std::string out;
    putHeader(out, kResponseMagic, type, id);
    putU8(out, static_cast<std::uint8_t>(Status::Error));
    putString(out, message);
    return out;
}

Request
decodeRequest(const std::string &payload)
{
    Cursor cursor(payload);
    const auto [type, id] = readHeader(cursor, kRequestMagic);
    Request request;
    request.type = type;
    request.id = id;
    if (type != MessageType::Execute) {
        cursor.expectEnd();
        return request;
    }
    ir::GemmChainConfig config;
    config.batch = cursor.i64();
    config.m = cursor.i64();
    config.n = cursor.i64();
    config.k = cursor.i64();
    config.l = cursor.i64();
    config.epilogue = epilogueFromByte(cursor.u8());
    config.causalMask = cursor.u8() != 0;
    config.softmaxScale = cursor.f32();
    config.name = "serve-request";
    validateExecuteConfig(config);
    request.execute.id = id;
    request.execute.config = config;
    const bool batched = config.batch > 1;
    request.execute.a = cursor.tensor(
        batched ? std::vector<std::int64_t>{config.batch, config.m,
                                            config.k}
                : std::vector<std::int64_t>{config.m, config.k},
        executeNumelA(config));
    request.execute.b = cursor.tensor(
        batched ? std::vector<std::int64_t>{config.batch, config.k,
                                            config.l}
                : std::vector<std::int64_t>{config.k, config.l},
        executeNumelB(config));
    request.execute.d = cursor.tensor(
        batched ? std::vector<std::int64_t>{config.batch, config.l,
                                            config.n}
                : std::vector<std::int64_t>{config.l, config.n},
        executeNumelD(config));
    cursor.expectEnd();
    return request;
}

bool
peekRequestHeader(const std::string &payload, MessageType &type,
                  std::uint64_t &id)
{
    // Header layout: u32 magic, u16 version, u16 type, u64 id.
    if (payload.size() < 16) {
        return false;
    }
    Cursor cursor(payload);
    if (cursor.u32() != kRequestMagic ||
        cursor.u16() != kProtocolVersion) {
        return false;
    }
    const std::uint16_t rawType = cursor.u16();
    if (rawType < 1 ||
        rawType > static_cast<std::uint16_t>(MessageType::Shutdown)) {
        return false;
    }
    type = static_cast<MessageType>(rawType);
    id = cursor.u64();
    return true;
}

Response
decodeResponse(const std::string &payload)
{
    Cursor cursor(payload);
    const auto [type, id] = readHeader(cursor, kResponseMagic);
    Response response;
    response.type = type;
    response.id = id;
    response.status = static_cast<Status>(cursor.u8());
    CHIMERA_CHECK(response.status == Status::Ok ||
                      response.status == Status::Error,
                  "malformed frame: unknown status byte");
    if (response.status == Status::Error) {
        response.error = cursor.str();
        cursor.expectEnd();
        return response;
    }
    switch (type) {
    case MessageType::Execute: {
        response.execute.id = id;
        response.execute.status = Status::Ok;
        response.execute.batchGroupSize = cursor.u32();
        response.execute.serverSeconds = cursor.f64();
        const std::uint32_t rank = cursor.u32();
        CHIMERA_CHECK(rank >= 1 && rank <= 3,
                      "malformed frame: bad response tensor rank " +
                          std::to_string(rank));
        std::vector<std::int64_t> shape;
        std::int64_t numel = 1;
        for (std::uint32_t i = 0; i < rank; ++i) {
            const std::int64_t dim = cursor.i64();
            CHIMERA_CHECK(dim >= 1 && dim <= kMaxExtent,
                          "malformed frame: bad response dimension " +
                              std::to_string(dim));
            shape.push_back(dim);
            numel *= dim;
        }
        response.execute.e = cursor.tensor(std::move(shape), numel);
        break;
    }
    case MessageType::Stats:
        response.statsText = cursor.str();
        break;
    case MessageType::Shutdown:
        break;
    }
    cursor.expectEnd();
    return response;
}

std::optional<std::string>
readFrame(int fd)
{
#ifdef __unix__
    const auto readFully = [fd](char *buffer, std::size_t want,
                                bool eofOk) -> bool {
        std::size_t got = 0;
        while (got < want) {
            const ssize_t n = ::read(fd, buffer + got, want - got);
            if (n == 0) {
                CHIMERA_CHECK(eofOk && got == 0,
                              "truncated frame: stream ended "
                              "mid-message");
                return false;
            }
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                // std::error_code, not strerror(): strerror's static
                // buffer is a data race between reader/writer threads
                // (clang-tidy concurrency-mt-unsafe).
                throw Error(
                    "frame read failed: " +
                    std::error_code(errno, std::generic_category())
                        .message());
            }
            got += static_cast<std::size_t>(n);
        }
        return true;
    };

    unsigned char prefix[4];
    if (!readFully(reinterpret_cast<char *>(prefix), sizeof prefix,
                   /*eofOk=*/true)) {
        return std::nullopt;
    }
    // The prefix is little-endian on the wire like every payload
    // integer; decode byte-wise so big-endian hosts agree.
    const std::uint32_t length =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    CHIMERA_CHECK(length <= kMaxFramePayload,
                  "oversized frame: " + std::to_string(length) +
                      " bytes exceeds the " +
                      std::to_string(kMaxFramePayload) + "-byte cap");
    std::string payload(length, '\0');
    if (length > 0) {
        readFully(payload.data(), length, /*eofOk=*/false);
    }
    return payload;
#else
    (void)fd;
    throw Error("serve protocol requires a POSIX platform");
#endif
}

void
writeFrame(int fd, const std::string &payload)
{
#ifdef __unix__
    CHIMERA_CHECK(payload.size() <= kMaxFramePayload,
                  "oversized frame: refusing to send " +
                      std::to_string(payload.size()) + " bytes");
    std::string frame;
    frame.reserve(4 + payload.size());
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.append(payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL turns a vanished peer into an EPIPE error the
        // caller can catch instead of a process-killing SIGPIPE; plain
        // write() remains the path for non-socket fds (replay logs).
        ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK) {
            n = ::write(fd, frame.data() + sent, frame.size() - sent);
        }
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw Error("frame write failed: " +
                        std::error_code(errno, std::generic_category())
                            .message());
        }
        sent += static_cast<std::size_t>(n);
    }
#else
    (void)fd;
    (void)payload;
    throw Error("serve protocol requires a POSIX platform");
#endif
}

} // namespace chimera::serve
