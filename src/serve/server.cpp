#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#ifdef __unix__
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "exec/gemm_chain_exec.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"

namespace chimera::serve {

namespace {

/** FNV-1a over raw bytes (digest of the --check replay). */
std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

void
atomicMax(std::atomic<std::int64_t> &target, std::int64_t value)
{
    std::int64_t seen = target.load(std::memory_order_relaxed);
    while (seen < value &&
           !target.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

Server::Server(const ServerOptions &options)
    : options_(options), gate_([&] {
          PlannerGateOptions go;
          go.capacityBytes = options.capacityBytes;
          go.cacheDir = options.cacheDir;
          go.verifyPlans = options.verifyPlans;
          return go;
      }()),
      engine_(exec::ComputeEngine::best()),
      latencySeconds_(
          registry_.histogram("chimera.serve.latency_seconds")),
      batchSlices_(registry_.histogram("chimera.serve.batch_slices"))
{
}

Server::~Server()
{
    stop();
}

double
Server::nowSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

#ifdef __unix__

void
Server::start()
{
    CHIMERA_CHECK(!running_.load(), "server already started");
    CHIMERA_CHECK(!options_.socketPath.empty(),
                  "chimera-serve needs a socket path");

    // A client that disconnects with responses still queued must not
    // kill the daemon: writeFrame already sends with MSG_NOSIGNAL, and
    // ignoring SIGPIPE process-wide covers any other fd the daemon
    // writes, so peer loss always surfaces as a catchable EPIPE.
    CHIMERA_CHECK(std::signal(SIGPIPE, SIG_IGN) != SIG_ERR,
                  "cannot ignore SIGPIPE; refusing to run with a "
                  "disposition under which any peer loss kills the "
                  "daemon");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CHIMERA_CHECK(options_.socketPath.size() < sizeof(addr.sun_path),
                  "socket path too long: " + options_.socketPath);
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    std::error_code ec;
    if (std::filesystem::is_socket(options_.socketPath, ec)) {
        // A leftover socket file from a dead daemon; a live daemon
        // would rebind and fail below if two race for one path.
        std::filesystem::remove(options_.socketPath, ec);
    }

    // std::error_code instead of strerror(): strerror's static buffer
    // is not thread-safe (clang-tidy concurrency-mt-unsafe) and the
    // daemon has every reason to keep its error paths reentrant.
    const auto errnoMessage = [] {
        return std::error_code(errno, std::generic_category()).message();
    };
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CHIMERA_CHECK(listenFd_ >= 0, "socket() failed: " + errnoMessage());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const std::string reason = errnoMessage();
        ::close(listenFd_);
        listenFd_ = -1;
        CHIMERA_CHECK(false, "bind(" + options_.socketPath +
                                 ") failed: " + reason);
    }
    if (::listen(listenFd_, 64) != 0) {
        const std::string reason = errnoMessage();
        ::close(listenFd_);
        listenFd_ = -1;
        std::filesystem::remove(options_.socketPath, ec);
        CHIMERA_CHECK(false, "listen(" + options_.socketPath +
                                 ") failed: " + reason);
    }

    running_.store(true);
    admissionThread_ = std::thread([this] { admissionLoop(); });
    const int executors = std::max(1, options_.executors);
    executorThreads_.reserve(static_cast<std::size_t>(executors));
    for (int i = 0; i < executors; ++i) {
        executorThreads_.emplace_back([this] { executorLoop(); });
    }
    writerThread_ = std::thread([this] { writerLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    CHIMERA_INFO("chimera-serve listening on " << options_.socketPath
                                               << " (" << executors
                                               << " executors)");
}

void
Server::acceptLoop()
{
    while (running_.load()) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        reapConnections(false);
        if (ready <= 0) {
            continue; // timeout, EINTR, or stop
        }
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            conn->id = nextConnId_++;
            connections_[conn->id] = conn;
        }
        connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
    }
}

void
Server::readerLoop(const std::shared_ptr<Connection> &conn)
{
    if (obs::TraceRecorder *tracer = obs::trace()) {
        tracer->nameThread("serve.reader." + std::to_string(conn->id));
    }
    while (true) {
        std::optional<std::string> payload;
        try {
            payload = readFrame(conn->fd);
        } catch (const Error &) {
            // Unframeable stream (bad length, truncation): there is no
            // way to resynchronize, so the connection dies.
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        if (!payload) {
            break; // clean end of stream
        }
        Request request;
        obs::Span decodeSpan(obs::trace(), "serve.decode", "serve");
        try {
            request = decodeRequest(*payload);
        } catch (const Error &e) {
            // Framing survived, the payload did not: reject this
            // message, keep the connection. Echo the header's type and
            // id when they parsed, so the client can correlate the
            // error with the request it sent; id 0 only when even the
            // header is unreadable.
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            MessageType type = MessageType::Execute;
            std::uint64_t id = 0;
            peekRequestHeader(*payload, type, id);
            decodeSpan.arg("req", static_cast<std::int64_t>(id))
                .arg("error", std::string(e.what()));
            decodeSpan.end();
            enqueueOutgoing(conn, encodeErrorResponse(type, id, e.what()),
                            id);
            continue;
        }
        decodeSpan.arg("req", static_cast<std::int64_t>(request.id))
            .arg("bytes", static_cast<std::int64_t>(payload->size()));
        decodeSpan.end();
        dispatchRequest(conn, std::move(request));
    }
    conn->readerDone.store(true);
}

void
Server::dispatchRequest(const std::shared_ptr<Connection> &conn,
                        Request &&request)
{
    switch (request.type) {
    case MessageType::Execute: {
        requestsAdmitted_.fetch_add(1, std::memory_order_relaxed);
        ServeJob job;
        job.request = std::move(request.execute);
        job.admittedSeconds = nowSeconds();
        conn->inflightJobs.fetch_add(1);
        job.complete = [this, conn](ExecuteResponse &&response) {
            // Server-side request latency (admission -> completion),
            // recorded into the HDR histogram behind the `latency-*`
            // stats lines before the response heads for the writer.
            latencySeconds_.recordSeconds(response.serverSeconds);
            // Enqueue (pendingWrites++) strictly before inflightJobs--
            // so the reaper never observes both counters at zero while
            // this response is in flight.
            const std::uint64_t id = response.id;
            enqueueOutgoing(conn, encodeExecuteResponse(response), id);
            conn->inflightJobs.fetch_sub(1);
        };
        {
            std::lock_guard<std::mutex> lock(admissionMutex_);
            admissionQueue_.push_back(std::move(job));
        }
        admissionCv_.notify_one();
        return;
    }
    case MessageType::Stats:
        enqueueOutgoing(conn,
                        encodeStatsResponse(request.id, statsText()),
                        request.id);
        return;
    case MessageType::Shutdown:
        enqueueOutgoing(conn, encodeShutdownResponse(request.id),
                        request.id);
        {
            std::lock_guard<std::mutex> lock(shutdownMutex_);
            shutdownRequested_.store(true);
        }
        shutdownCv_.notify_all();
        return;
    }
}

void
Server::admissionLoop()
{
    if (obs::TraceRecorder *tracer = obs::trace()) {
        tracer->nameThread("serve.admission");
    }
    std::unique_lock<std::mutex> lock(admissionMutex_);
    while (true) {
        admissionCv_.wait(lock, [&] {
            return admissionStop_ || !admissionQueue_.empty();
        });
        if (admissionQueue_.empty()) {
            if (admissionStop_) {
                return;
            }
            continue;
        }
        if (options_.batching && options_.batchWindowMicros > 0 &&
            !admissionStop_) {
            // Hold the door briefly so companions arriving back-to-back
            // coalesce; a stop request cuts the window short.
            admissionCv_.wait_for(
                lock, std::chrono::microseconds(options_.batchWindowMicros),
                [&] { return admissionStop_; });
        }
        std::deque<ServeJob> pending;
        pending.swap(admissionQueue_);
        lock.unlock();

        obs::TraceRecorder *const tracer = obs::trace();
        obs::Span batchSpan(tracer, "serve.batch", "serve");
        const std::int64_t jobsIn =
            static_cast<std::int64_t>(pending.size());
        std::vector<std::vector<ServeJob>> groups = groupCompatible(
            std::move(pending), options_.batching ? options_.maxBatch : 1);
        if (tracer != nullptr) {
            batchSpan.arg("jobs", jobsIn)
                .arg("groups", static_cast<std::int64_t>(groups.size()));
            // One instant per formed group carrying its request-id list;
            // this is the decode -> execute linkage when requests
            // coalesce (serve.execute repeats the same `reqs` string).
            for (const std::vector<ServeJob> &group : groups) {
                std::string reqs;
                std::int64_t slices = 0;
                for (const ServeJob &job : group) {
                    if (!reqs.empty()) {
                        reqs += ",";
                    }
                    reqs += std::to_string(job.request.id);
                    slices += job.request.config.batch;
                }
                tracer->instant("serve.group", "serve",
                                {{"reqs", reqs}, {"slices", slices}});
            }
        }
        batchSpan.end();
        {
            std::lock_guard<std::mutex> glock(groupMutex_);
            for (auto &group : groups) {
                groupQueue_.push_back(std::move(group));
            }
        }
        groupCv_.notify_all();
        lock.lock();
    }
}

void
Server::executorLoop()
{
    if (obs::TraceRecorder *tracer = obs::trace()) {
        tracer->nameThread("serve.executor");
    }
    exec::ExecOptions execOptions;
    execOptions.threads = std::max(1, options_.execThreads);
    // execOptions.raceCheck stays nullptr in the daemon: the gate's
    // requireCertified policy only serves plans whose SB04 certificate
    // proves shape-generic disjointness of the parallel axes, so the
    // per-run shadow-memory scan (RC01) would re-prove statically
    // settled facts at ~2x execution cost on every request.
    const auto now = [this] { return nowSeconds(); };
    while (true) {
        std::vector<ServeJob> group;
        {
            std::unique_lock<std::mutex> lock(groupMutex_);
            groupCv_.wait(lock, [&] {
                return groupStop_ || !groupQueue_.empty();
            });
            if (groupQueue_.empty()) {
                return; // groupStop_ and fully drained
            }
            group = std::move(groupQueue_.front());
            groupQueue_.pop_front();
        }
        // Record the group size before executing: responses (and any
        // stats request racing them) land after executeGroup delivers,
        // so recording afterwards would undercount visibly.
        std::int64_t slices = 0;
        for (const ServeJob &job : group) {
            slices += job.request.config.batch;
        }
        batchSlices_.record(slices);
        const GroupResult result =
            executeGroup(group, gate_, engine_, execOptions, now);
        batchesExecuted_.fetch_add(1, std::memory_order_relaxed);
        if (group.size() > 1) {
            batchedRequests_.fetch_add(
                static_cast<std::int64_t>(group.size()),
                std::memory_order_relaxed);
        }
        atomicMax(maxBatchObserved_, result.slices);
    }
}

void
Server::writerLoop()
{
    if (obs::TraceRecorder *tracer = obs::trace()) {
        tracer->nameThread("serve.writer");
    }
    while (true) {
        Outgoing out;
        {
            std::unique_lock<std::mutex> lock(outgoingMutex_);
            outgoingCv_.wait(lock, [&] {
                return outgoingStop_ || !outgoingQueue_.empty();
            });
            if (outgoingQueue_.empty()) {
                return; // outgoingStop_ and fully drained
            }
            out = std::move(outgoingQueue_.front());
            outgoingQueue_.pop_front();
        }
        {
            obs::Span writeSpan(obs::trace(), "serve.write", "serve");
            writeSpan.arg("req", static_cast<std::int64_t>(out.id))
                .arg("bytes",
                     static_cast<std::int64_t>(out.payload.size()));
            std::lock_guard<std::mutex> wlock(out.conn->writeMutex);
            if (out.conn->fd >= 0) {
                try {
                    writeFrame(out.conn->fd, out.payload);
                    responsesWritten_.fetch_add(1,
                                                std::memory_order_relaxed);
                } catch (const Error &) {
                    // Peer vanished mid-write: wake its reader, move on.
                    ::shutdown(out.conn->fd, SHUT_RDWR);
                    writeSpan.arg("error", std::string("peer-lost"));
                }
            }
        }
        out.conn->pendingWrites.fetch_sub(1);
    }
}

void
Server::enqueueOutgoing(const std::shared_ptr<Connection> &conn,
                        std::string &&payload, std::uint64_t id)
{
    conn->pendingWrites.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(outgoingMutex_);
        outgoingQueue_.push_back(Outgoing{conn, std::move(payload), id});
    }
    outgoingCv_.notify_one();
}

void
Server::reapConnections(bool all)
{
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
        const std::shared_ptr<Connection> &conn = it->second;
        // A finished reader alone is not enough: a client may half-
        // close its send side and wait for responses, so keep the fd
        // until every admitted job has completed and the writer has
        // drained this connection's queue.
        if (!all && (!conn->readerDone.load() ||
                     conn->inflightJobs.load() != 0 ||
                     conn->pendingWrites.load() != 0)) {
            ++it;
            continue;
        }
        if (conn->reader.joinable()) {
            conn->reader.join();
        }
        {
            std::lock_guard<std::mutex> wlock(conn->writeMutex);
            if (conn->fd >= 0) {
                ::close(conn->fd);
                conn->fd = -1;
            }
        }
        it = connections_.erase(it);
    }
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(shutdownMutex_);
    shutdownCv_.wait(lock, [&] {
        return shutdownRequested_.load() || !running_.load();
    });
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(shutdownMutex_);
        if (!running_.exchange(false)) {
            return;
        }
    }
    shutdownCv_.notify_all();

    // 1. No new connections.
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
    }
    if (acceptThread_.joinable()) {
        acceptThread_.join();
    }

    // 2. No new requests: end every reader at its next frame boundary.
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto &[id, conn] : connections_) {
            std::lock_guard<std::mutex> wlock(conn->writeMutex);
            if (conn->fd >= 0) {
                ::shutdown(conn->fd, SHUT_RD);
            }
        }
        for (auto &[id, conn] : connections_) {
            if (conn->reader.joinable()) {
                conn->reader.join();
            }
        }
    }

    // 3. Admission flushes what it holds, then exits.
    {
        std::lock_guard<std::mutex> lock(admissionMutex_);
        admissionStop_ = true;
    }
    admissionCv_.notify_all();
    if (admissionThread_.joinable()) {
        admissionThread_.join();
    }

    // 4. Executors drain the group queue.
    {
        std::lock_guard<std::mutex> lock(groupMutex_);
        groupStop_ = true;
    }
    groupCv_.notify_all();
    for (std::thread &t : executorThreads_) {
        if (t.joinable()) {
            t.join();
        }
    }
    executorThreads_.clear();

    // 5. Writer flushes every queued response before sockets close.
    {
        std::lock_guard<std::mutex> lock(outgoingMutex_);
        outgoingStop_ = true;
    }
    outgoingCv_.notify_all();
    if (writerThread_.joinable()) {
        writerThread_.join();
    }

    // 6. Tear down the sockets.
    reapConnections(true);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    std::error_code ec;
    std::filesystem::remove(options_.socketPath, ec);
}

#else // !__unix__

void
Server::start()
{
    CHIMERA_CHECK(false,
                  "chimera-serve requires a Unix-domain socket platform");
}

void
Server::acceptLoop()
{
}
void
Server::readerLoop(const std::shared_ptr<Connection> &)
{
}
void
Server::dispatchRequest(const std::shared_ptr<Connection> &, Request &&)
{
}
void
Server::admissionLoop()
{
}
void
Server::executorLoop()
{
}
void
Server::writerLoop()
{
}
void
Server::enqueueOutgoing(const std::shared_ptr<Connection> &,
                        std::string &&, std::uint64_t)
{
}
void
Server::reapConnections(bool)
{
}
void
Server::wait()
{
}
void
Server::stop()
{
}

#endif // __unix__

ServerStats
Server::stats() const
{
    ServerStats out;
    out.connections = connectionsAccepted_.load(std::memory_order_relaxed);
    out.requests = requestsAdmitted_.load(std::memory_order_relaxed);
    out.responses = responsesWritten_.load(std::memory_order_relaxed);
    out.protocolErrors = protocolErrors_.load(std::memory_order_relaxed);
    out.batches = batchesExecuted_.load(std::memory_order_relaxed);
    out.batchedRequests = batchedRequests_.load(std::memory_order_relaxed);
    out.maxBatchObserved =
        maxBatchObserved_.load(std::memory_order_relaxed);
    return out;
}

std::string
Server::statsText() const
{
    const ServerStats s = stats();
    const PlannerGateStats g = gate_.stats();
    const obs::HistogramSnapshot lat = latencySeconds_.snapshot();
    const obs::HistogramSnapshot slices = batchSlices_.snapshot();
    std::ostringstream out;
    out << "server: chimera-serve\n"
        << "stats-version: 2\n"
        << "connections: " << s.connections << "\n"
        << "requests: " << s.requests << "\n"
        << "responses: " << s.responses << "\n"
        << "protocol-errors: " << s.protocolErrors << "\n"
        << "batches: " << s.batches << "\n"
        << "batched-requests: " << s.batchedRequests << "\n"
        << "max-batch-observed: " << s.maxBatchObserved << "\n"
        << "plans-led: " << g.flightsLed << "\n"
        << "plans-joined: " << g.flightsJoined << "\n"
        << "derived-plans: " << g.derivedPlans << "\n"
        << "certified-plans: " << g.certifiedPlans << "\n"
        << "recertified-plans: " << g.recertifiedPlans << "\n"
        << "plan-cache-memory-hits: " << g.cache.memoryHits << "\n"
        << "plan-cache-disk-hits: " << g.cache.diskHits << "\n"
        << "plan-cache-misses: " << g.cache.misses << "\n"
        << "plan-cache-stores: " << g.cache.stores << "\n"
        << "plan-cache-disk-disabled: " << (g.cache.diskDisabled ? 1 : 0)
        << "\n";
    // stats-version 2: server-side latency percentiles (HDR histogram,
    // seconds) and batch-size distribution (raw slices). Clients parse
    // by key, so future additions only need a version bump.
    const auto seconds = [&out](const char *key, double value) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.9f", value);
        out << key << ": " << buf << "\n";
    };
    out << "latency-count: " << lat.count() << "\n";
    seconds("latency-p50-seconds", lat.percentileSeconds(0.50));
    seconds("latency-p90-seconds", lat.percentileSeconds(0.90));
    seconds("latency-p99-seconds", lat.percentileSeconds(0.99));
    seconds("latency-p999-seconds", lat.percentileSeconds(0.999));
    seconds("latency-mean-seconds", lat.meanSeconds());
    seconds("latency-max-seconds", lat.maxSeconds());
    out << "batch-slices-count: " << slices.count() << "\n"
        << "batch-slices-p50: " << slices.percentile(0.50) << "\n"
        << "batch-slices-p99: " << slices.percentile(0.99) << "\n"
        << "batch-slices-max: " << slices.max() << "\n";
    return out.str();
}

std::string
Server::metricsJson() const
{
    // Mirror the plain-counter snapshots into gauges so the JSON dump
    // is self-contained: one document carries the histograms, the
    // daemon counters, and the process-global planner metrics.
    const ServerStats s = stats();
    const PlannerGateStats g = gate_.stats();
    registry_.gauge("chimera.serve.connections").set(s.connections);
    registry_.gauge("chimera.serve.requests").set(s.requests);
    registry_.gauge("chimera.serve.responses").set(s.responses);
    registry_.gauge("chimera.serve.protocol_errors")
        .set(s.protocolErrors);
    registry_.gauge("chimera.serve.batches").set(s.batches);
    registry_.gauge("chimera.serve.batched_requests")
        .set(s.batchedRequests);
    registry_.gauge("chimera.serve.max_batch_observed")
        .set(s.maxBatchObserved);
    registry_.gauge("chimera.serve.plans_led").set(g.flightsLed);
    registry_.gauge("chimera.serve.plans_joined").set(g.flightsJoined);
    registry_.gauge("chimera.serve.derived_plans").set(g.derivedPlans);
    registry_.gauge("chimera.serve.certified_plans")
        .set(g.certifiedPlans);
    registry_.gauge("chimera.serve.recertified_plans")
        .set(g.recertifiedPlans);
    return obs::renderJson({&registry_, &obs::Registry::global()});
}

CheckResult
runCheckReplay(std::vector<ExecuteRequest> requests, std::int64_t maxBatch,
               double capacityBytes)
{
    CheckResult out;
    out.requests = static_cast<std::int64_t>(requests.size());

    PlannerGateOptions gateOptions;
    gateOptions.capacityBytes = capacityBytes;
    gateOptions.cacheDir = "-"; // memory-only: replay leaves no state
    PlannerGate gate(gateOptions);
    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    exec::ExecOptions execOptions;
    execOptions.threads = 1;
    const auto now = [] { return 0.0; };

    // Pass 1: every request alone, under its canonical plan.
    std::vector<Tensor> individual(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        std::vector<ServeJob> group(1);
        group[0].request = requests[i]; // copy: pass 2 reuses the inputs
        group[0].complete = [&individual, i](ExecuteResponse &&response) {
            if (response.status == Status::Ok) {
                individual[i] = std::move(response.e);
            }
        };
        const GroupResult result =
            executeGroup(group, gate, engine, execOptions, now);
        CHIMERA_CHECK(result.ok, "check replay: " + result.error);
    }

    // Pass 2: the daemon's batcher, flushing on stream order alone.
    std::vector<Tensor> batched(requests.size());
    std::uint64_t digest = kFnvOffset;
    std::deque<ServeJob> jobs;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        ServeJob job;
        job.request = std::move(requests[i]);
        job.complete = [&batched, &digest, i](ExecuteResponse &&response) {
            if (response.status != Status::Ok) {
                return; // the group's result.ok reports the failure
            }
            const std::string payload = encodeExecuteResponse(response);
            digest = fnv1a64(payload.data(), payload.size(), digest);
            batched[i] = std::move(response.e);
        };
        jobs.push_back(std::move(job));
    }
    std::vector<std::vector<ServeJob>> groups =
        groupCompatible(std::move(jobs), maxBatch);
    out.groups = static_cast<std::int64_t>(groups.size());
    for (std::vector<ServeJob> &group : groups) {
        const GroupResult result =
            executeGroup(group, gate, engine, execOptions, now);
        CHIMERA_CHECK(result.ok, "check replay: " + result.error);
    }

    out.identical = true;
    for (std::size_t i = 0; i < individual.size(); ++i) {
        if (individual[i].numel() != batched[i].numel() ||
            std::memcmp(individual[i].data(), batched[i].data(),
                        static_cast<std::size_t>(individual[i].bytes())) !=
                0) {
            out.identical = false;
            break;
        }
    }
    out.digest = digest;
    return out;
}

std::vector<ExecuteRequest>
builtinCheckWorkload()
{
    struct Spec
    {
        std::int64_t batch, m, n, k, l;
        ir::Epilogue epilogue;
        float scale;
        bool causal;
    };
    // Three compatibility classes, interleaved, with mixed batch
    // counts: exercises grouping across classes, multi-slice requests,
    // and all three epilogues.
    const Spec specs[] = {
        {1, 96, 64, 48, 80, ir::Epilogue::Relu, 1.0f, false},
        {1, 64, 64, 64, 64, ir::Epilogue::Softmax, 0.125f, true},
        {2, 96, 64, 48, 80, ir::Epilogue::Relu, 1.0f, false},
        {1, 80, 48, 32, 56, ir::Epilogue::None, 1.0f, false},
        {1, 64, 64, 64, 64, ir::Epilogue::Softmax, 0.125f, true},
        {1, 96, 64, 48, 80, ir::Epilogue::Relu, 1.0f, false},
        {3, 64, 64, 64, 64, ir::Epilogue::Softmax, 0.125f, true},
        {1, 80, 48, 32, 56, ir::Epilogue::None, 1.0f, false},
    };
    std::vector<ExecuteRequest> requests;
    std::uint64_t id = 1;
    for (const Spec &spec : specs) {
        ExecuteRequest request;
        request.id = id++;
        request.config.batch = spec.batch;
        request.config.m = spec.m;
        request.config.n = spec.n;
        request.config.k = spec.k;
        request.config.l = spec.l;
        request.config.epilogue = spec.epilogue;
        request.config.softmaxScale = spec.scale;
        request.config.causalMask = spec.causal;
        request.config.name = "serve-check";
        request.a = Tensor(exec::gemmChainShapeA(request.config));
        request.b = Tensor(exec::gemmChainShapeB(request.config));
        request.d = Tensor(exec::gemmChainShapeD(request.config));
        fillPattern(request.a);
        fillPattern(request.b);
        fillPattern(request.d);
        requests.push_back(std::move(request));
    }
    return requests;
}

} // namespace chimera::serve
