#include "serve/batcher.hpp"

#include <cstdio>
#include <cstring>
#include <map>

#include "exec/gemm_chain_exec.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace chimera::serve {

std::string
compatibilityKey(const ir::GemmChainConfig &config)
{
    // The softmax scale compares by bit pattern: two requests batch
    // together only when their per-slice arithmetic is identical.
    std::uint32_t scaleBits = 0;
    std::memcpy(&scaleBits, &config.softmaxScale, sizeof scaleBits);
    char out[128];
    const int n = std::snprintf(
        out, sizeof out,
        "m=%lld;n=%lld;k=%lld;l=%lld;ep=%d;scale=%08x;causal=%d",
        static_cast<long long>(config.m), static_cast<long long>(config.n),
        static_cast<long long>(config.k), static_cast<long long>(config.l),
        static_cast<int>(config.epilogue), scaleBits,
        config.causalMask ? 1 : 0);
    CHIMERA_CHECK(n > 0 && static_cast<std::size_t>(n) < sizeof out,
                  "compatibility key formatting failed");
    return std::string(out, static_cast<std::size_t>(n));
}

std::vector<std::vector<ServeJob>>
groupCompatible(std::deque<ServeJob> &&jobs, std::int64_t maxBatch)
{
    std::vector<std::vector<ServeJob>> groups;
    std::vector<std::int64_t> slices; // aligned with groups
    std::map<std::string, std::size_t> open; // class -> open group index
    while (!jobs.empty()) {
        ServeJob job = std::move(jobs.front());
        jobs.pop_front();
        const std::int64_t batch = job.request.config.batch;
        if (maxBatch <= 1) {
            groups.push_back({});
            groups.back().push_back(std::move(job));
            slices.push_back(batch);
            continue;
        }
        const std::string key = compatibilityKey(job.request.config);
        if (const auto it = open.find(key); it != open.end()) {
            const std::size_t g = it->second;
            if (slices[g] + batch <= maxBatch) {
                groups[g].push_back(std::move(job));
                slices[g] += batch;
                if (slices[g] == maxBatch) {
                    open.erase(it);
                }
                continue;
            }
            open.erase(it); // full enough; start a fresh group
        }
        groups.push_back({});
        groups.back().push_back(std::move(job));
        slices.push_back(batch);
        if (batch < maxBatch) {
            open[key] = groups.size() - 1;
        }
    }
    return groups;
}

namespace {

/**
 * Completes members of @p group from index @p first onward with
 * @p message. Jobs before @p first already had their complete callback
 * invoked (it is called exactly once per job) and are left alone.
 */
void
failGroup(std::vector<ServeJob> &group, std::size_t first,
          const std::string &message,
          const std::function<double()> &nowSeconds)
{
    for (std::size_t i = first; i < group.size(); ++i) {
        ServeJob &job = group[i];
        ExecuteResponse response;
        response.id = job.request.id;
        response.status = Status::Error;
        response.error = message;
        response.batchGroupSize =
            static_cast<std::uint32_t>(group.size());
        response.serverSeconds = nowSeconds() - job.admittedSeconds;
        job.complete(std::move(response));
    }
}

/** Comma-joined request ids, the cross-span linkage key of a group. */
std::string
requestIdList(const std::vector<ServeJob> &group)
{
    std::string out;
    for (const ServeJob &job : group) {
        if (!out.empty()) {
            out += ",";
        }
        out += std::to_string(job.request.id);
    }
    return out;
}

} // namespace

GroupResult
executeGroup(std::vector<ServeJob> &group, PlannerGate &gate,
             const exec::ComputeEngine &engine,
             const exec::ExecOptions &execOptions,
             const std::function<double()> &nowSeconds)
{
    GroupResult result;
    result.requests = static_cast<std::int64_t>(group.size());
    CHIMERA_ASSERT(!group.empty(), "empty batch group");
    std::int64_t totalBatch = 0;
    for (const ServeJob &job : group) {
        totalBatch += job.request.config.batch;
    }
    result.slices = totalBatch;

    // The execute span links back to serve.decode/serve.write through
    // the request ids and carries the plan's *predicted* DV next to the
    // measured bytes and duration — every served group doubles as one
    // model-validation data point.
    obs::TraceRecorder *const tracer = obs::trace();
    obs::Span execSpan(tracer, "serve.execute", "serve");
    if (tracer != nullptr) {
        execSpan.arg("reqs", requestIdList(group))
            .arg("slices", totalBatch);
    }

    // Jobs whose complete callback has been (or is being) invoked; a
    // mid-scatter exception must fail only the suffix after this point
    // so no job is ever completed twice.
    std::size_t completed = 0;
    try {
        if (totalBatch == 1) {
            // Lone slice: the canonical plan runs on the request chain
            // itself (batch == 1 omits the b axis entirely).
            ServeJob &job = group.front();
            obs::Span gateSpan(tracer, "serve.gate", "serve");
            if (tracer != nullptr) {
                gateSpan.arg("reqs", requestIdList(group));
            }
            const plan::ExecutionPlan plan =
                gate.canonicalPlan(job.request.config);
            gateSpan.end();
            if (tracer != nullptr) {
                execSpan
                    .arg("predicted_dv_bytes", plan.predictedVolumeBytes)
                    .arg("mu_bytes", plan.memUsageBytes)
                    .arg("bytes_in", job.request.a.bytes() +
                                         job.request.b.bytes() +
                                         job.request.d.bytes());
            }
            Tensor e(exec::gemmChainShapeE(job.request.config));
            exec::runFusedGemmChain(job.request.config, plan, engine,
                                    job.request.a, job.request.b,
                                    job.request.d, e, execOptions);
            if (tracer != nullptr) {
                execSpan.arg("bytes_out", e.bytes());
            }
            ExecuteResponse response;
            response.id = job.request.id;
            response.status = Status::Ok;
            response.batchGroupSize = 1;
            response.serverSeconds = nowSeconds() - job.admittedSeconds;
            response.e = std::move(e);
            completed = 1;
            job.complete(std::move(response));
            result.ok = true;
            return result;
        }

        // Coalesced group (or one multi-batch request): concatenate
        // along b, run the derived plan whose per-slice walk is pinned
        // to the canonical plan, then scatter E back per request.
        ir::GemmChainConfig batched =
            canonicalSlice(group.front().request.config);
        batched.batch = totalBatch;
        batched.name = "serve-batched";
        obs::Span gateSpan(tracer, "serve.gate", "serve");
        if (tracer != nullptr) {
            gateSpan.arg("reqs", requestIdList(group));
        }
        const plan::ExecutionPlan plan =
            gate.batchedPlan(batched, totalBatch);
        gateSpan.end();
        if (tracer != nullptr) {
            execSpan.arg("predicted_dv_bytes", plan.predictedVolumeBytes)
                .arg("mu_bytes", plan.memUsageBytes);
        }

        const std::int64_t perA = batched.m * batched.k;
        const std::int64_t perB = batched.k * batched.l;
        const std::int64_t perD = batched.l * batched.n;
        const std::int64_t perE = batched.m * batched.n;
        Tensor a(exec::gemmChainShapeA(batched));
        Tensor b(exec::gemmChainShapeB(batched));
        Tensor d(exec::gemmChainShapeD(batched));
        std::int64_t offset = 0;
        for (const ServeJob &job : group) {
            const std::int64_t nSlices = job.request.config.batch;
            std::memcpy(a.data() + offset * perA, job.request.a.data(),
                        static_cast<std::size_t>(nSlices * perA) *
                            sizeof(float));
            std::memcpy(b.data() + offset * perB, job.request.b.data(),
                        static_cast<std::size_t>(nSlices * perB) *
                            sizeof(float));
            std::memcpy(d.data() + offset * perD, job.request.d.data(),
                        static_cast<std::size_t>(nSlices * perD) *
                            sizeof(float));
            offset += nSlices;
        }

        Tensor e(exec::gemmChainShapeE(batched));
        if (tracer != nullptr) {
            execSpan.arg("bytes_in",
                         a.bytes() + b.bytes() + d.bytes())
                .arg("bytes_out", e.bytes());
        }
        exec::runFusedGemmChain(batched, plan, engine, a, b, d, e,
                                execOptions);

        offset = 0;
        for (ServeJob &job : group) {
            const std::int64_t nSlices = job.request.config.batch;
            Tensor slice(exec::gemmChainShapeE(job.request.config));
            std::memcpy(slice.data(), e.data() + offset * perE,
                        static_cast<std::size_t>(nSlices * perE) *
                            sizeof(float));
            offset += nSlices;
            ExecuteResponse response;
            response.id = job.request.id;
            response.status = Status::Ok;
            response.batchGroupSize =
                static_cast<std::uint32_t>(group.size());
            response.serverSeconds = nowSeconds() - job.admittedSeconds;
            response.e = std::move(slice);
            ++completed;
            job.complete(std::move(response));
        }
        result.ok = true;
        return result;
    } catch (const std::exception &e) {
        result.error = e.what();
        failGroup(group, completed, result.error, nowSeconds);
        return result;
    }
}

} // namespace chimera::serve
