#pragma once

/**
 * @file
 * Single-flight admission of serve requests into the plan cache.
 *
 * A daemon's cold start is a planning stampede: N identical requests
 * arrive before the first plan lands in the cache, and without
 * coordination every one of them would enumerate the same block orders.
 * The gate wraps the persistent PlanCache with per-fingerprint
 * single-flight: the first thread to miss becomes the leader and plans;
 * every other thread with the same fingerprint joins the flight and
 * waits for the leader's plan. Fingerprint *hits* never touch the
 * flight table — they return straight off the cache's fast path.
 *
 * Two plan flavors exist per compatibility class:
 *
 *  - the canonical slice plan: the batch == 1 chain, planned with the
 *    full inter-block search (this is the expensive, single-flighted
 *    one), and
 *  - derived batched plans: the batch == B chain with the b axis
 *    prepended to the canonical order and every canonical tile pinned
 *    (b tiles at 1), solved by the fixed-order planner. Pinning makes
 *    the per-slice block walk — and therefore the per-slice arithmetic
 *    — identical to the canonical plan's, which is what lets the
 *    batcher return bitwise-identical outputs whether a request ran
 *    alone or coalesced into a batch.
 */

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ir/builders.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"

namespace chimera::serve {

/** Gate configuration. */
struct PlannerGateOptions
{
    /** On-chip capacity for planning, bytes. */
    double capacityBytes = 768.0 * 1024;

    /**
     * Plan-cache directory: empty = PlanCache::defaultDirectory().
     * Pass "-" for a memory-only cache.
     */
    std::string cacheDir;

    /** Audit winning plans with the legality verifier. */
    bool verifyPlans = false;

    /**
     * Serve only plans carrying a valid SB01-SB04 safety certificate.
     * Cache entries minted before the analyzer existed load uncertified
     * and are re-certified in place; a plan the analyzer refuses is not
     * served. This is what lets the daemon keep the dynamic race
     * checker off: SB04's shape-generic disjointness proof covers every
     * admissible batch, not just the shapes replayed so far.
     */
    bool requireCertified = true;
};

/** Counters exposed through the daemon's stats document. */
struct PlannerGateStats
{
    int flightsLed = 0; ///< planner actually ran (once per cold key)
    int flightsJoined = 0; ///< waited on a concurrent leader's plan
    int derivedPlans = 0; ///< fixed-order batched derivations solved
    int certifiedPlans = 0; ///< plans served with an SB certificate
    int recertifiedPlans = 0; ///< pre-analyzer cache entries re-proven
    plan::PlanCacheStats cache; ///< underlying plan-cache counters
};

/** Single-flight planning front-end shared by all serve executors. */
class PlannerGate
{
  public:
    explicit PlannerGate(const PlannerGateOptions &options);

    /**
     * The canonical (batch == 1) plan for @p slice's compatibility
     * class. Cache hits are lock-free with respect to the flight
     * table; concurrent cold calls for one fingerprint plan exactly
     * once. Throws Error when no feasible plan exists.
     */
    plan::ExecutionPlan canonicalPlan(const ir::GemmChainConfig &slice);

    /**
     * The derived plan for the same class at total batch
     * @p totalBatch (> 1): canonical order with b outermost, canonical
     * tiles pinned, b tile 1. Also cached and single-flighted (the
     * fixed-order solve is cheap but not free).
     */
    plan::ExecutionPlan batchedPlan(const ir::GemmChainConfig &slice,
                                    std::int64_t totalBatch);

    PlannerGateStats stats() const;

    plan::PlanCache &cache() { return cache_; }

  private:
    struct Flight
    {
        bool done = false;
        plan::ExecutionPlan plan;
        std::exception_ptr error;
    };

    /**
     * Runs @p planFn under single-flight for @p key: the first caller
     * plans, concurrent callers wait and share the result (or the
     * leader's exception).
     */
    plan::ExecutionPlan
    once(const std::string &key,
         const std::function<plan::ExecutionPlan()> &planFn);

    plan::PlannerOptions plannerOptions(const ir::Chain &chain) const;

    /**
     * Enforces options_.requireCertified on a plan about to be served:
     * already-certified plans pass through (counted), uncertified ones
     * (pre-analyzer cache entries) get one re-certification attempt,
     * and plans the analyzer refutes raise Error with the violations —
     * the daemon refuses to serve what it cannot prove safe.
     */
    void ensureCertified(const ir::Chain &chain,
                         const plan::PlannerOptions &po,
                         plan::ExecutionPlan &plan);

    const PlannerGateOptions options_;
    plan::PlanCache cache_;

    mutable std::mutex flightMutex_;
    std::condition_variable flightDone_;
    std::map<std::string, std::shared_ptr<Flight>> flights_;
    /// Atomics, not mutex-guarded ints: stats() snapshots run on the
    /// stats/metrics path concurrently with planning flights, and must
    /// never contend with (or race against) the flight table.
    std::atomic<int> flightsLed_{0};
    std::atomic<int> flightsJoined_{0};
    std::atomic<int> derivedPlans_{0};
    std::atomic<int> certifiedPlans_{0};
    std::atomic<int> recertifiedPlans_{0};
};

/**
 * The batch == 1 canonical slice of @p config: identical m/n/k/l,
 * epilogue, scale and mask, name normalized. Two requests are
 * batch-compatible iff their canonical slices describe the same chain.
 */
ir::GemmChainConfig canonicalSlice(const ir::GemmChainConfig &config);

} // namespace chimera::serve
