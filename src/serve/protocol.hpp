#pragma once

/**
 * @file
 * Wire protocol of chimera-serve: length-prefixed binary frames over a
 * Unix-domain stream socket (or, byte-identically, a replay log file).
 *
 * Every message travels as one frame:
 *
 *     u32  payload length (little-endian, excludes the prefix itself)
 *     ...  payload
 *
 * and every payload starts with a fixed header:
 *
 *     u32  magic      'CHRQ' (request) / 'CHRS' (response)
 *     u16  version    kProtocolVersion
 *     u16  type       MessageType
 *     u64  id         caller-chosen request id, echoed in the response
 *
 * An Execute request then carries the GEMM-chain configuration
 * (batch/m/n/k/l, epilogue, softmax scale, causal flag) followed by the
 * raw fp32 payloads of A [batch,m,k], B [batch,k,l] and D [batch,l,n];
 * the Ok response returns E [batch,m,n] plus the batch-group size the
 * request rode in and the server-side seconds from admission to
 * completion. Responses are matched to requests by id and may arrive in
 * any order (the daemon completes work through an async queue).
 *
 * All integers are little-endian fixed-width; floats are IEEE-754 bit
 * patterns. Decoding is strict in the plan-deserializer tradition:
 * wrong magic/version, unknown types, truncated or oversized payloads,
 * non-positive or absurd extents, and tensor payloads whose length does
 * not match the declared shape are all rejected with chimera::Error —
 * a malformed frame never half-parses into a request.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "ir/builders.hpp"
#include "tensor/tensor.hpp"

namespace chimera::serve {

/** Protocol revision; bumped on any wire-format change. */
constexpr std::uint16_t kProtocolVersion = 1;

/** 'CHRQ' / 'CHRS' little-endian magics. */
constexpr std::uint32_t kRequestMagic = 0x51524843u;
constexpr std::uint32_t kResponseMagic = 0x53524843u;

/** Frames larger than this are rejected before allocation. */
constexpr std::uint32_t kMaxFramePayload = 256u * 1024 * 1024;

/** Largest extent accepted for any single request axis. */
constexpr std::int64_t kMaxExtent = 1 << 20;

/** Message kinds a frame can carry. */
enum class MessageType : std::uint16_t
{
    Execute = 1, ///< run one GEMM chain; response carries E or an error
    Stats = 2, ///< daemon counters as a "key: value" text document
    Shutdown = 3, ///< graceful stop; acked before the daemon exits
};

/** Response status byte. */
enum class Status : std::uint8_t
{
    Ok = 0,
    Error = 1,
};

/** One chain-execution request. */
struct ExecuteRequest
{
    std::uint64_t id = 0;
    ir::GemmChainConfig config; ///< config.name is not on the wire
    Tensor a; ///< [batch?, m, k] (batch dim only when batch > 1)
    Tensor b; ///< [batch?, k, l]
    Tensor d; ///< [batch?, l, n]
};

/** One chain-execution response. */
struct ExecuteResponse
{
    std::uint64_t id = 0;
    Status status = Status::Ok;
    std::string error; ///< non-empty iff status == Error
    std::uint32_t batchGroupSize = 1; ///< requests coalesced with this one
    double serverSeconds = 0.0; ///< admission -> completion on the server
    Tensor e; ///< [batch?, m, n] iff status == Ok
};

/** Any decoded request-side message. */
struct Request
{
    MessageType type = MessageType::Execute;
    std::uint64_t id = 0;
    ExecuteRequest execute; ///< valid iff type == Execute
};

/** Any decoded response-side message. */
struct Response
{
    MessageType type = MessageType::Execute;
    std::uint64_t id = 0;
    Status status = Status::Ok;
    std::string error;
    ExecuteResponse execute; ///< valid iff type == Execute && Ok
    std::string statsText; ///< valid iff type == Stats
};

/** @name Frame payload encoding (no length prefix)
 *  @{ */
std::string encodeExecuteRequest(const ExecuteRequest &request);
std::string encodeStatsRequest(std::uint64_t id);
std::string encodeShutdownRequest(std::uint64_t id);
std::string encodeExecuteResponse(const ExecuteResponse &response);
std::string encodeStatsResponse(std::uint64_t id, const std::string &text);
std::string encodeShutdownResponse(std::uint64_t id);
std::string encodeErrorResponse(MessageType type, std::uint64_t id,
                                const std::string &message);
/** @} */

/** Decodes a request payload; throws chimera::Error when malformed. */
Request decodeRequest(const std::string &payload);

/**
 * Best-effort parse of a request payload's fixed header alone. Returns
 * true and fills @p type / @p id when the magic, version and message
 * type are all valid; false (leaving the outputs untouched) otherwise.
 * Never throws — used to echo the caller's request id in the error
 * response when the body after a well-formed header fails to decode.
 */
bool peekRequestHeader(const std::string &payload, MessageType &type,
                       std::uint64_t &id);

/** Decodes a response payload; throws chimera::Error when malformed. */
Response decodeResponse(const std::string &payload);

/** Expected element counts for a request's tensor payloads. */
std::int64_t executeNumelA(const ir::GemmChainConfig &config);
std::int64_t executeNumelB(const ir::GemmChainConfig &config);
std::int64_t executeNumelD(const ir::GemmChainConfig &config);
std::int64_t executeNumelE(const ir::GemmChainConfig &config);

/**
 * Validates an Execute configuration the way the decoder does (positive
 * extents, extent caps, known epilogue combination: causal masking
 * needs softmax and m == l). Throws chimera::Error when invalid.
 */
void validateExecuteConfig(const ir::GemmChainConfig &config);

/**
 * Blocking frame read from @p fd (socket or file). Returns the payload,
 * or nullopt on clean end-of-stream at a frame boundary. Throws
 * chimera::Error on truncated frames, oversized lengths, or read
 * errors.
 */
std::optional<std::string> readFrame(int fd);

/** Blocking frame write; throws chimera::Error on short/failed write. */
void writeFrame(int fd, const std::string &payload);

} // namespace chimera::serve
