#include "serve/planner_gate.hpp"

#include "exec/constraints.hpp"
#include "kernels/micro_kernel.hpp"
#include "obs/trace.hpp"
#include "support/cpu_features.hpp"
#include "support/error.hpp"

namespace chimera::serve {

ir::GemmChainConfig
canonicalSlice(const ir::GemmChainConfig &config)
{
    ir::GemmChainConfig slice = config;
    slice.batch = 1;
    slice.name = "serve-slice";
    return slice;
}

PlannerGate::PlannerGate(const PlannerGateOptions &options)
    : options_(options),
      cache_(options.cacheDir == "-"
                 ? std::string()
                 : (options.cacheDir.empty()
                        ? plan::PlanCache::defaultDirectory()
                        : options.cacheDir))
{
}

plan::PlannerOptions
PlannerGate::plannerOptions(const ir::Chain &chain) const
{
    plan::PlannerOptions po;
    po.memCapacityBytes = options_.capacityBytes;
    po.constraints = exec::cpuChainConstraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    po.verify = options_.verifyPlans;
    return po;
}

void
PlannerGate::ensureCertified(const ir::Chain &chain,
                             const plan::PlannerOptions &po,
                             plan::ExecutionPlan &plan)
{
    if (!options_.requireCertified) {
        return;
    }
    if (!plan.safety.certified) {
        // Cache entries written before the analyzer existed carry no
        // `safety:` line; prove them now rather than refusing them.
        const analysis::SafetyAnalysis analysis =
            plan::certifyPlan(chain, po, plan);
        if (!plan.safety.certified) {
            throw Error("refusing to serve an uncertified plan; the "
                        "static safety analyzer found:\n" +
                        analysis.renderViolations());
        }
        recertifiedPlans_.fetch_add(1, std::memory_order_relaxed);
    }
    certifiedPlans_.fetch_add(1, std::memory_order_relaxed);
}

plan::ExecutionPlan
PlannerGate::once(const std::string &key,
                  const std::function<plan::ExecutionPlan()> &planFn)
{
    std::unique_lock<std::mutex> lock(flightMutex_);
    if (const auto it = flights_.find(key); it != flights_.end()) {
        flightsJoined_.fetch_add(1, std::memory_order_relaxed);
        const std::shared_ptr<Flight> flight = it->second;
        flightDone_.wait(lock, [&] { return flight->done; });
        if (flight->error) {
            std::rethrow_exception(flight->error);
        }
        return flight->plan;
    }
    const auto flight = std::make_shared<Flight>();
    flights_[key] = flight;
    flightsLed_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();

    try {
        plan::ExecutionPlan plan = planFn();
        lock.lock();
        flight->plan = plan;
        flight->done = true;
        flights_.erase(key);
        flightDone_.notify_all();
        return plan;
    } catch (...) {
        lock.lock();
        flight->error = std::current_exception();
        flight->done = true;
        flights_.erase(key);
        flightDone_.notify_all();
        throw;
    }
}

plan::ExecutionPlan
PlannerGate::canonicalPlan(const ir::GemmChainConfig &config)
{
    const ir::GemmChainConfig slice = canonicalSlice(config);
    const ir::Chain chain = ir::makeGemmChain(slice);
    const plan::PlannerOptions po = plannerOptions(chain);
    obs::TraceRecorder *const tracer = obs::trace();
    obs::Span span(tracer, "serve.gate.canonical", "serve");
    if (tracer != nullptr) {
        span.arg("fingerprint", plan::planFingerprint(chain, po));
    }
    // Fast path: fingerprint hits never touch the flight table.
    if (std::optional<plan::ExecutionPlan> hit = cache_.lookup(chain, po)) {
        ensureCertified(chain, po, *hit);
        span.arg("outcome", std::string("hit"))
            .arg("dv_bytes", hit->predictedVolumeBytes)
            .arg("mu_bytes", hit->memUsageBytes);
        return *hit;
    }
    plan::ExecutionPlan plan =
        once(plan::planFingerprint(chain, po), [&] {
            // The leader plans with the cache detached so the miss above
            // stays the key's only miss; the store publishes the plan for
            // both tiers (and for other processes) before followers wake.
            plan::ExecutionPlan fresh = plan::planChain(chain, po);
            cache_.store(chain, po, fresh);
            return fresh;
        });
    ensureCertified(chain, po, plan);
    span.arg("outcome", std::string("planned"))
        .arg("dv_bytes", plan.predictedVolumeBytes)
        .arg("mu_bytes", plan.memUsageBytes);
    return plan;
}

plan::ExecutionPlan
PlannerGate::batchedPlan(const ir::GemmChainConfig &config,
                         std::int64_t totalBatch)
{
    CHIMERA_CHECK(totalBatch > 1,
                  "batchedPlan requires a total batch > 1; the canonical "
                  "plan covers single slices");
    const ir::GemmChainConfig slice = canonicalSlice(config);
    const plan::ExecutionPlan canonical = canonicalPlan(slice);
    const ir::Chain sliceChain = ir::makeGemmChain(slice);

    ir::GemmChainConfig batchedConfig = slice;
    batchedConfig.batch = totalBatch;
    batchedConfig.name = "serve-batched";
    const ir::Chain chain = ir::makeGemmChain(batchedConfig);

    // Pin every canonical tile (by axis name) and hold the b tile at 1:
    // the per-slice block walk is then the canonical plan's, so slice
    // arithmetic — and output bits — cannot depend on the group size.
    plan::PlannerOptions po = plannerOptions(chain);
    for (ir::AxisId axis = 0; axis < sliceChain.numAxes(); ++axis) {
        const std::string &name =
            sliceChain.axes()[static_cast<std::size_t>(axis)].name;
        po.constraints.fixed[ir::axisIdByName(chain, name)] =
            canonical.tiles[static_cast<std::size_t>(axis)];
    }
    po.constraints.fixed[ir::axisIdByName(chain, "b")] = 1;

    obs::TraceRecorder *const tracer = obs::trace();
    obs::Span span(tracer, "serve.gate.batched", "serve");
    if (tracer != nullptr) {
        span.arg("fingerprint", plan::planFingerprint(chain, po))
            .arg("batch", totalBatch);
    }
    if (std::optional<plan::ExecutionPlan> hit = cache_.lookup(chain, po)) {
        ensureCertified(chain, po, *hit);
        span.arg("outcome", std::string("hit"))
            .arg("dv_bytes", hit->predictedVolumeBytes)
            .arg("mu_bytes", hit->memUsageBytes);
        return *hit;
    }
    plan::ExecutionPlan plan =
        once(plan::planFingerprint(chain, po), [&] {
            std::vector<ir::AxisId> perm;
            perm.reserve(static_cast<std::size_t>(chain.numAxes()));
            perm.push_back(ir::axisIdByName(chain, "b"));
            for (const ir::AxisId axis : canonical.perm) {
                perm.push_back(ir::axisIdByName(
                    chain,
                    sliceChain.axes()[static_cast<std::size_t>(axis)]
                        .name));
            }
            plan::ExecutionPlan derived =
                plan::planFixedOrder(chain, perm, po);
            derivedPlans_.fetch_add(1, std::memory_order_relaxed);
            cache_.store(chain, po, derived);
            return derived;
        });
    ensureCertified(chain, po, plan);
    span.arg("outcome", std::string("planned"))
        .arg("dv_bytes", plan.predictedVolumeBytes)
        .arg("mu_bytes", plan.memUsageBytes);
    return plan;
}

PlannerGateStats
PlannerGate::stats() const
{
    PlannerGateStats out;
    out.flightsLed = flightsLed_.load(std::memory_order_relaxed);
    out.flightsJoined = flightsJoined_.load(std::memory_order_relaxed);
    out.derivedPlans = derivedPlans_.load(std::memory_order_relaxed);
    out.certifiedPlans = certifiedPlans_.load(std::memory_order_relaxed);
    out.recertifiedPlans =
        recertifiedPlans_.load(std::memory_order_relaxed);
    out.cache = cache_.stats();
    return out;
}

} // namespace chimera::serve
