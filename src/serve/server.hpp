#pragma once

/**
 * @file
 * chimera-serve: the plan-and-serve daemon.
 *
 * A Unix-domain-socket server for chain-execution requests using the
 * length-prefixed protocol of serve/protocol.hpp. The thread layout:
 *
 *   accept loop ──► one reader per connection ──► admission queue
 *                                                      │ (batch window)
 *                                                admission thread
 *                                                      │ groupCompatible
 *                                                 group queue
 *                                                      │
 *                                               executor threads ──►
 *                                           completion queue ──► writer
 *
 * Readers parse and validate frames; admission coalesces compatible
 * requests along the b axis inside a short window; executors plan
 * through the single-flight PlannerGate and run groups on the compute
 * engine; one writer drains the completion queue back to the sockets,
 * so responses go out as they finish — out of order with respect to
 * arrival, matched by request id.
 *
 * A malformed payload inside a well-framed message gets an error
 * response (and bumps protocol-errors); an unframeable byte stream
 * (bad magic/length) closes the connection, since resynchronization is
 * impossible. A Shutdown request is acknowledged, then the daemon
 * drains: readers stop, queued groups execute, every queued response is
 * written, and only then do the sockets close.
 *
 * `runCheckReplay` is the socket-free deterministic core of
 * `chimera-serve --check`: it executes a request list twice — each
 * request alone, then coalesced through the same batcher the daemon
 * uses — verifies the outputs are bitwise identical, and digests the
 * batched responses so two runs (or two machines) can be compared.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/compute_engine.hpp"
#include "exec/exec_options.hpp"
#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/planner_gate.hpp"
#include "serve/protocol.hpp"

namespace chimera::serve {

/** Daemon configuration (CLI flags map 1:1 onto these). */
struct ServerOptions
{
    /** Path to bind the Unix-domain listening socket at. */
    std::string socketPath;

    /** Executor threads (concurrent groups in flight). */
    int executors = 2;

    /** Worker threads per executed group (1 = serial execution). */
    int execThreads = 1;

    /** Coalesce compatible requests along b (false = serve singly). */
    bool batching = true;

    /** Max total slices per batch group. */
    std::int64_t maxBatch = 8;

    /**
     * After the first queued request, admission waits this long for
     * companions before flushing. 0 flushes immediately (batching then
     * only groups requests that arrived while executors were busy).
     */
    std::int64_t batchWindowMicros = 200;

    /** On-chip capacity assumed when planning, bytes. */
    double capacityBytes = 768.0 * 1024;

    /** Plan-cache directory ("" = default, "-" = memory-only). */
    std::string cacheDir;

    /** Audit plans with the legality verifier before serving. */
    bool verifyPlans = false;
};

/** Monotonic daemon counters (snapshot; see also PlannerGateStats). */
struct ServerStats
{
    std::int64_t connections = 0; ///< accepted over the lifetime
    std::int64_t requests = 0; ///< well-formed Execute requests admitted
    std::int64_t responses = 0; ///< responses written (incl. errors)
    std::int64_t protocolErrors = 0; ///< malformed frames/payloads
    std::int64_t batches = 0; ///< executed groups
    std::int64_t batchedRequests = 0; ///< requests that shared a group
    std::int64_t maxBatchObserved = 0; ///< largest group, in slices
};

/** The daemon. start() spawns the thread set; stop() drains it. */
class Server
{
  public:
    explicit Server(const ServerOptions &options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Binds the socket and spawns all threads. Throws Error on bind
     * failure (e.g. the path exists and is not a stale socket). */
    void start();

    /** Blocks until a client sends Shutdown or stop() is called. */
    void wait();

    /**
     * Graceful drain in dependency order: accept loop, readers,
     * admission, executors, writer; then sockets close and the socket
     * file is unlinked. Idempotent; called by the destructor.
     */
    void stop();

    /** True once a client has asked the daemon to shut down. */
    bool shutdownRequested() const { return shutdownRequested_.load(); }

    ServerStats stats() const;

    /**
     * The stats document served for MessageType::Stats: "key: value"
     * lines covering ServerStats, PlannerGateStats and the plan cache.
     * Keys are stable (tests and the loadgen parse them); additions are
     * versioned by the `stats-version` line (currently 2, which added
     * the `latency-*` / `batch-slices-*` histogram exposition).
     */
    std::string statsText() const;

    /**
     * JSON object over this server's metric registry (request-latency
     * and batch-size histograms, mirrored counters) merged with the
     * process-global registry (planner + plan-cache metrics). Written
     * by `chimera-serve --metrics-dump`.
     */
    std::string metricsJson() const;

    PlannerGate &gate() { return gate_; }

  private:
    struct Connection
    {
        std::uint64_t id = 0;
        int fd = -1; ///< -1 once closed; guarded by writeMutex
        std::mutex writeMutex; ///< serializes writes and the close
        std::atomic<bool> readerDone{false};
        /// Admitted Execute jobs whose response is not yet queued for
        /// the writer. Incremented at dispatch, decremented by the
        /// completion callback after it enqueues (so inflightJobs +
        /// pendingWrites never transiently reads as zero mid-handoff).
        std::atomic<std::int64_t> inflightJobs{0};
        /// Responses queued for the writer but not yet written (or
        /// dropped). A connection is reaped only once the reader is
        /// done AND both counters are zero, so a client that half-
        /// closes (shutdown(SHUT_WR)) and waits still gets every
        /// response to its in-flight requests.
        std::atomic<std::int64_t> pendingWrites{0};
        std::thread reader;
    };

    /** One encoded response awaiting the writer thread. */
    struct Outgoing
    {
        std::shared_ptr<Connection> conn;
        std::string payload;
        std::uint64_t id = 0; ///< request id (trace span linkage)
    };

    void acceptLoop();
    void readerLoop(const std::shared_ptr<Connection> &conn);
    void admissionLoop();
    void executorLoop();
    void writerLoop();

    /** Handles one decoded request from @p conn's reader. */
    void dispatchRequest(const std::shared_ptr<Connection> &conn,
                         Request &&request);

    void enqueueOutgoing(const std::shared_ptr<Connection> &conn,
                         std::string &&payload, std::uint64_t id);

    /** Joins finished, fully-drained readers and closes their sockets
     * (all = true closes unconditionally; used only after the writer
     * has exited). */
    void reapConnections(bool all);

    double nowSeconds() const;

    const ServerOptions options_;
    PlannerGate gate_;
    exec::ComputeEngine engine_;

    /// Per-instance registry (several servers can coexist in one test
    /// process without polluting each other's histograms); merged with
    /// the global registry by metricsJson(). Mutable because the const
    /// metricsJson() mirrors the plain-counter snapshots into gauges.
    mutable obs::Registry registry_;
    obs::Histogram &latencySeconds_;
    obs::Histogram &batchSlices_;

    int listenFd_ = -1;
    std::thread acceptThread_;
    std::thread admissionThread_;
    std::vector<std::thread> executorThreads_;
    std::thread writerThread_;

    std::atomic<bool> running_{false};
    std::atomic<bool> shutdownRequested_{false};
    std::mutex shutdownMutex_;
    std::condition_variable shutdownCv_;

    mutable std::mutex connMutex_;
    std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
    std::uint64_t nextConnId_ = 1;

    std::mutex admissionMutex_;
    std::condition_variable admissionCv_;
    std::deque<ServeJob> admissionQueue_;
    bool admissionStop_ = false;

    std::mutex groupMutex_;
    std::condition_variable groupCv_;
    std::deque<std::vector<ServeJob>> groupQueue_;
    bool groupStop_ = false;

    std::mutex outgoingMutex_;
    std::condition_variable outgoingCv_;
    std::deque<Outgoing> outgoingQueue_;
    bool outgoingStop_ = false;

    std::atomic<std::int64_t> connectionsAccepted_{0};
    std::atomic<std::int64_t> requestsAdmitted_{0};
    std::atomic<std::int64_t> responsesWritten_{0};
    std::atomic<std::int64_t> protocolErrors_{0};
    std::atomic<std::int64_t> batchesExecuted_{0};
    std::atomic<std::int64_t> batchedRequests_{0};
    std::atomic<std::int64_t> maxBatchObserved_{0};
};

/** Outcome of the --check replay (see runCheckReplay). */
struct CheckResult
{
    std::int64_t requests = 0;
    std::int64_t groups = 0; ///< batch groups the coalesced pass formed
    bool identical = false; ///< batched outputs == individual outputs
    std::uint64_t digest = 0; ///< FNV-1a over batched response payloads
};

/**
 * Socket-free deterministic replay: executes @p requests each alone
 * (canonical plans), then coalesced via groupCompatible/executeGroup
 * with @p maxBatch, and compares outputs bitwise. Runs serially with a
 * memory-only plan cache, so the digest depends only on the request
 * list. Throws Error when a request is invalid or planning fails.
 */
CheckResult runCheckReplay(std::vector<ExecuteRequest> requests,
                           std::int64_t maxBatch,
                           double capacityBytes = 768.0 * 1024);

/**
 * The built-in --check workload: a deterministic mix of compatibility
 * classes, epilogues and batch counts with fillPattern inputs.
 */
std::vector<ExecuteRequest> builtinCheckWorkload();

} // namespace chimera::serve
