#pragma once

/**
 * @file
 * Request coalescing along the paper's batch axis.
 *
 * The b axis of a batch GEMM chain is embarrassingly parallel and sits
 * outermost in every serving plan, which makes it the natural batching
 * hook: requests that agree on (m, n, k, l, epilogue, softmax scale,
 * causal flag) — the *compatibility class* — can be concatenated along
 * b and executed as one batched chain. A group of total batch B runs
 * the derived plan from PlannerGate::batchedPlan, whose per-slice block
 * walk is pinned to the canonical single-request plan, so every request
 * in the group receives bit-for-bit the output it would have received
 * running alone (the batcher's core contract, tested as such).
 *
 * Grouping itself is deterministic and timing-free: jobs are taken in
 * arrival order and greedily appended to the open group of their class
 * until a group reaches the batch cap. The daemon decides *when* to
 * flush (its admission window); the replay checker flushes on stream
 * order alone, which is what makes `chimera-serve --check` reproducible.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "exec/compute_engine.hpp"
#include "exec/exec_options.hpp"
#include "serve/planner_gate.hpp"
#include "serve/protocol.hpp"

namespace chimera::serve {

/** One admitted request plus its completion callback. */
struct ServeJob
{
    ExecuteRequest request;

    /**
     * Called exactly once with the finished response, from whichever
     * executor thread ran the group. Must be thread-safe and cheap
     * (the daemon's callback just enqueues to the completion queue).
     */
    std::function<void(ExecuteResponse &&)> complete;

    /** Admission timestamp, seconds on the daemon's steady clock. */
    double admittedSeconds = 0.0;
};

/**
 * Key under which requests may share a batch: everything shape- and
 * semantics-relevant except the batch count. Stable string form so it
 * can key maps and appear in logs.
 */
std::string compatibilityKey(const ir::GemmChainConfig &config);

/**
 * Splits @p jobs (consumed; arrival order preserved) into batch groups:
 * members of one compatibility class coalesce — interleaved classes do
 * not break a group — until the group holds @p maxBatch total slices (a request with batch > 1
 * contributes that many slices; an oversized single request still forms
 * its own group). With @p maxBatch <= 1 every job is its own group.
 * Deterministic: depends only on job order and configs.
 */
std::vector<std::vector<ServeJob>>
groupCompatible(std::deque<ServeJob> &&jobs, std::int64_t maxBatch);

/** Outcome counters of one executed group. */
struct GroupResult
{
    std::int64_t requests = 0;
    std::int64_t slices = 0; ///< total batch executed
    bool ok = false;
    std::string error; ///< set when ok == false
};

/**
 * Plans (through @p gate), executes and completes one group.
 *
 * A single-request group with batch == 1 runs the canonical plan on
 * the slice chain directly; anything larger concatenates inputs along
 * b, runs the derived batched plan, and scatters E back per request.
 * Failures complete every member with an error response instead of
 * throwing — the daemon must survive any admissible group.
 *
 * @p nowSeconds supplies completion timestamps (steady clock of the
 * caller) for the per-response serverSeconds field.
 */
GroupResult executeGroup(std::vector<ServeJob> &group, PlannerGate &gate,
                         const exec::ComputeEngine &engine,
                         const exec::ExecOptions &execOptions,
                         const std::function<double()> &nowSeconds);

} // namespace chimera::serve
