#pragma once

/**
 * @file
 * Naive reference implementations of every operator Chimera optimizes.
 *
 * These are the correctness oracles for the fused executors and the
 * compute kernels of the unfused "library" baseline's slow path. They are
 * deliberately simple loop nests with no tiling or SIMD.
 */

#include "tensor/tensor.hpp"

namespace chimera::ref {

/** C[M,N] = A[M,K] * B[K,N]. */
void gemm(const Tensor &a, const Tensor &b, Tensor &c);

/** C[B,M,N] = A[B,M,K] * B[B,K,N] per batch. */
void batchGemm(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * NCHW direct convolution with implicit zero padding.
 * input [N,C,H,W], weight [OC,C,KH,KW], output [N,OC,OH,OW] where
 * OH = (H + 2*pad - KH)/stride + 1 (and likewise OW).
 */
void conv2d(const Tensor &input, const Tensor &weight, Tensor &output,
            int stride, int pad);

/** Elementwise max(x, 0), in place. */
void reluInPlace(Tensor &t);

/** Row-wise softmax over the last dimension. */
void softmaxLastDim(Tensor &t);

/** out = a + b elementwise; shapes must match. */
void add(const Tensor &a, const Tensor &b, Tensor &out);

/** Adds bias[N] to every row of t[..., N], in place. */
void addBiasLastDim(Tensor &t, const Tensor &bias);

/** tanh-approximation GELU, in place. */
void geluInPlace(Tensor &t);

/** Layer norm over the last dimension with gamma/beta of size [N]. */
void layerNormLastDim(Tensor &t, const Tensor &gamma, const Tensor &beta,
                      float epsilon = 1e-5f);

/** Output spatial extent for conv2d: (in + 2*pad - kernel)/stride + 1. */
std::int64_t convOutDim(std::int64_t in, std::int64_t kernel, int stride,
                        int pad);

} // namespace chimera::ref
