#include "tensor/reference.hpp"

#include <cmath>

#include "support/error.hpp"

namespace chimera::ref {

void
gemm(const Tensor &a, const Tensor &b, Tensor &c)
{
    CHIMERA_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
                  "gemm expects rank-2 tensors");
    const std::int64_t m = a.shape()[0];
    const std::int64_t k = a.shape()[1];
    const std::int64_t n = b.shape()[1];
    CHIMERA_CHECK(b.shape()[0] == k && c.shape()[0] == m && c.shape()[1] == n,
                  "gemm shape mismatch");
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::int64_t p = 0; p < k; ++p) {
                acc += pa[i * k + p] * pb[p * n + j];
            }
            pc[i * n + j] = acc;
        }
    }
}

void
batchGemm(const Tensor &a, const Tensor &b, Tensor &c)
{
    CHIMERA_CHECK(a.rank() == 3 && b.rank() == 3 && c.rank() == 3,
                  "batchGemm expects rank-3 tensors");
    const std::int64_t batch = a.shape()[0];
    const std::int64_t m = a.shape()[1];
    const std::int64_t k = a.shape()[2];
    const std::int64_t n = b.shape()[2];
    CHIMERA_CHECK(b.shape()[0] == batch && b.shape()[1] == k &&
                      c.shape()[0] == batch && c.shape()[1] == m &&
                      c.shape()[2] == n,
                  "batchGemm shape mismatch");
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (std::int64_t bi = 0; bi < batch; ++bi) {
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
                float acc = 0.0f;
                for (std::int64_t p = 0; p < k; ++p) {
                    acc += pa[(bi * m + i) * k + p] * pb[(bi * k + p) * n + j];
                }
                pc[(bi * m + i) * n + j] = acc;
            }
        }
    }
}

std::int64_t
convOutDim(std::int64_t in, std::int64_t kernel, int stride, int pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

void
conv2d(const Tensor &input, const Tensor &weight, Tensor &output, int stride,
       int pad)
{
    CHIMERA_CHECK(input.rank() == 4 && weight.rank() == 4 &&
                      output.rank() == 4,
                  "conv2d expects rank-4 tensors");
    const std::int64_t n = input.shape()[0];
    const std::int64_t c = input.shape()[1];
    const std::int64_t h = input.shape()[2];
    const std::int64_t w = input.shape()[3];
    const std::int64_t oc = weight.shape()[0];
    const std::int64_t kh = weight.shape()[2];
    const std::int64_t kw = weight.shape()[3];
    const std::int64_t oh = convOutDim(h, kh, stride, pad);
    const std::int64_t ow = convOutDim(w, kw, stride, pad);
    CHIMERA_CHECK(weight.shape()[1] == c, "conv2d channel mismatch");
    CHIMERA_CHECK(output.shape()[0] == n && output.shape()[1] == oc &&
                      output.shape()[2] == oh && output.shape()[3] == ow,
                  "conv2d output shape mismatch");

    const float *pi = input.data();
    const float *pw = weight.data();
    float *po = output.data();
    for (std::int64_t ni = 0; ni < n; ++ni) {
        for (std::int64_t oci = 0; oci < oc; ++oci) {
            for (std::int64_t ohi = 0; ohi < oh; ++ohi) {
                for (std::int64_t owi = 0; owi < ow; ++owi) {
                    float acc = 0.0f;
                    for (std::int64_t ci = 0; ci < c; ++ci) {
                        for (std::int64_t khi = 0; khi < kh; ++khi) {
                            const std::int64_t hi =
                                ohi * stride + khi - pad;
                            if (hi < 0 || hi >= h) {
                                continue;
                            }
                            for (std::int64_t kwi = 0; kwi < kw; ++kwi) {
                                const std::int64_t wi =
                                    owi * stride + kwi - pad;
                                if (wi < 0 || wi >= w) {
                                    continue;
                                }
                                acc += pi[((ni * c + ci) * h + hi) * w + wi] *
                                       pw[((oci * c + ci) * kh + khi) * kw +
                                          kwi];
                            }
                        }
                    }
                    po[((ni * oc + oci) * oh + ohi) * ow + owi] = acc;
                }
            }
        }
    }
}

void
reluInPlace(Tensor &t)
{
    float *p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        p[i] = p[i] > 0.0f ? p[i] : 0.0f;
    }
}

void
softmaxLastDim(Tensor &t)
{
    CHIMERA_CHECK(t.rank() >= 1, "softmax needs at least rank 1");
    const std::int64_t cols = t.shape().back();
    const std::int64_t rows = t.numel() / cols;
    float *p = t.data();
    for (std::int64_t r = 0; r < rows; ++r) {
        float *row = p + r * cols;
        float maxVal = row[0];
        for (std::int64_t j = 1; j < cols; ++j) {
            maxVal = std::max(maxVal, row[j]);
        }
        float sum = 0.0f;
        for (std::int64_t j = 0; j < cols; ++j) {
            row[j] = std::exp(row[j] - maxVal);
            sum += row[j];
        }
        const float inv = 1.0f / sum;
        for (std::int64_t j = 0; j < cols; ++j) {
            row[j] *= inv;
        }
    }
}

void
add(const Tensor &a, const Tensor &b, Tensor &out)
{
    CHIMERA_CHECK(a.shape() == b.shape() && a.shape() == out.shape(),
                  "add shape mismatch");
    const float *pa = a.data();
    const float *pb = b.data();
    float *po = out.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        po[i] = pa[i] + pb[i];
    }
}

void
addBiasLastDim(Tensor &t, const Tensor &bias)
{
    CHIMERA_CHECK(bias.rank() == 1 && bias.shape()[0] == t.shape().back(),
                  "bias length must match the last dimension");
    const std::int64_t cols = t.shape().back();
    const std::int64_t rows = t.numel() / cols;
    float *p = t.data();
    const float *pb = bias.data();
    for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t j = 0; j < cols; ++j) {
            p[r * cols + j] += pb[j];
        }
    }
}

void
geluInPlace(Tensor &t)
{
    constexpr float kSqrt2OverPi = 0.7978845608028654f;
    float *p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        const float x = p[i];
        const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
        p[i] = 0.5f * x * (1.0f + std::tanh(inner));
    }
}

void
layerNormLastDim(Tensor &t, const Tensor &gamma, const Tensor &beta,
                 float epsilon)
{
    const std::int64_t cols = t.shape().back();
    CHIMERA_CHECK(gamma.rank() == 1 && gamma.shape()[0] == cols &&
                      beta.rank() == 1 && beta.shape()[0] == cols,
                  "layernorm gamma/beta must match the last dimension");
    const std::int64_t rows = t.numel() / cols;
    float *p = t.data();
    const float *pg = gamma.data();
    const float *pbt = beta.data();
    for (std::int64_t r = 0; r < rows; ++r) {
        float *row = p + r * cols;
        float mean = 0.0f;
        for (std::int64_t j = 0; j < cols; ++j) {
            mean += row[j];
        }
        mean /= static_cast<float>(cols);
        float var = 0.0f;
        for (std::int64_t j = 0; j < cols; ++j) {
            const float d = row[j] - mean;
            var += d * d;
        }
        var /= static_cast<float>(cols);
        const float invStd = 1.0f / std::sqrt(var + epsilon);
        for (std::int64_t j = 0; j < cols; ++j) {
            row[j] = (row[j] - mean) * invStd * pg[j] + pbt[j];
        }
    }
}

} // namespace chimera::ref
