#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace chimera {

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape))
{
    numel_ = 1;
    for (std::int64_t dim : shape_) {
        CHIMERA_CHECK(dim >= 1, "tensor dimensions must be positive");
        numel_ *= dim;
    }
    strides_.resize(shape_.size());
    std::int64_t stride = 1;
    for (int d = rank() - 1; d >= 0; --d) {
        strides_[static_cast<std::size_t>(d)] = stride;
        stride *= shape_[static_cast<std::size_t>(d)];
    }
    data_ = allocateAligned<float>(static_cast<std::size_t>(numel_));
}

Tensor::Tensor(const Tensor &other)
    : shape_(other.shape_), strides_(other.strides_), numel_(other.numel_)
{
    if (numel_ > 0) {
        data_ = allocateAligned<float>(static_cast<std::size_t>(numel_));
        std::memcpy(data_.get(), other.data_.get(),
                    static_cast<std::size_t>(numel_) * sizeof(float));
    }
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this != &other) {
        Tensor copy(other);
        *this = std::move(copy);
    }
    return *this;
}

std::int64_t
Tensor::flatIndex(const std::vector<std::int64_t> &index) const
{
    CHIMERA_CHECK(static_cast<int>(index.size()) == rank(),
                  "index rank mismatch");
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < index.size(); ++d) {
        CHIMERA_CHECK(index[d] >= 0 && index[d] < shape_[d],
                      "index out of bounds");
        flat += index[d] * strides_[d];
    }
    return flat;
}

float &
Tensor::at(const std::vector<std::int64_t> &index)
{
    return data_[flatIndex(index)];
}

float
Tensor::at(const std::vector<std::int64_t> &index) const
{
    return data_[flatIndex(index)];
}

void
Tensor::fill(float value)
{
    std::fill_n(data_.get(), numel_, value);
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    for (int d = 0; d < rank(); ++d) {
        if (d != 0) {
            oss << "x";
        }
        oss << shape_[static_cast<std::size_t>(d)];
    }
    return oss.str();
}

void
fillUniform(Tensor &t, Rng &rng, float lo, float hi)
{
    float *p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        p[i] = rng.uniform(lo, hi);
    }
}

void
fillPattern(Tensor &t)
{
    float *p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        // Bounded, non-repeating-by-row pattern keeps sums well-conditioned.
        p[i] = static_cast<float>((i % 13) - 6) * 0.125f;
    }
}

bool
allClose(const Tensor &a, const Tensor &b, float rtol, float atol)
{
    if (a.shape() != b.shape()) {
        return false;
    }
    const float *pa = a.data();
    const float *pb = b.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const float tol = atol + rtol * std::fabs(pb[i]);
        if (std::fabs(pa[i] - pb[i]) > tol) {
            return false;
        }
    }
    return true;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    CHIMERA_CHECK(a.shape() == b.shape(), "shape mismatch in maxAbsDiff");
    float maxDiff = 0.0f;
    const float *pa = a.data();
    const float *pb = b.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        maxDiff = std::max(maxDiff, std::fabs(pa[i] - pb[i]));
    }
    return maxDiff;
}

} // namespace chimera
