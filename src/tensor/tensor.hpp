#pragma once

/**
 * @file
 * Dense row-major fp32 tensors.
 *
 * The paper's accelerators run fp16; our measured substrate is the host
 * CPU where fp32 FMA is the native wide path, so all executors and micro
 * kernels operate on fp32 (see DESIGN.md §2). The analytical model is
 * dtype-agnostic: it counts elements and scales by elementSize.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/aligned.hpp"

namespace chimera {

/** Dense, row-major, 64-byte aligned fp32 tensor with value semantics. */
class Tensor
{
  public:
    /** Creates an empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** Allocates an uninitialized tensor of the given shape. */
    explicit Tensor(std::vector<std::int64_t> shape);

    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&other) noexcept = default;
    Tensor &operator=(Tensor &&other) noexcept = default;

    /** The tensor's shape; empty for a default-constructed tensor. */
    const std::vector<std::int64_t> &shape() const { return shape_; }

    /** Row-major strides in elements. */
    const std::vector<std::int64_t> &strides() const { return strides_; }

    /** Number of dimensions. */
    int rank() const { return static_cast<int>(shape_.size()); }

    /** Total number of elements. */
    std::int64_t numel() const { return numel_; }

    /** Size of the tensor payload in bytes. */
    std::int64_t bytes() const
    {
        return numel_ * static_cast<std::int64_t>(sizeof(float));
    }

    /** Raw data pointer (64-byte aligned). */
    float *data() { return data_.get(); }
    const float *data() const { return data_.get(); }

    /** Element access by flat index; bounds-checked in at(). */
    float &operator[](std::int64_t i) { return data_[i]; }
    float operator[](std::int64_t i) const { return data_[i]; }

    /** Bounds-checked multi-dimensional access. */
    float &at(const std::vector<std::int64_t> &index);
    float at(const std::vector<std::int64_t> &index) const;

    /** Sets every element to @p value. */
    void fill(float value);

    /** Sets every element to zero. */
    void zero() { fill(0.0f); }

    /** "2x3x4" style shape string. */
    std::string shapeString() const;

  private:
    std::int64_t flatIndex(const std::vector<std::int64_t> &index) const;

    std::vector<std::int64_t> shape_;
    std::vector<std::int64_t> strides_;
    std::int64_t numel_ = 0;
    AlignedBuffer<float> data_;
};

/** Fills @p t with uniform values in [lo, hi) from @p rng. */
class Rng;
void fillUniform(Tensor &t, Rng &rng, float lo = -1.0f, float hi = 1.0f);

/** Fills @p t with a deterministic index-derived pattern (no RNG). */
void fillPattern(Tensor &t);

/**
 * True when |a[i] - b[i]| <= atol + rtol * |b[i]| for every element.
 * Shapes must match exactly.
 */
bool allClose(const Tensor &a, const Tensor &b, float rtol = 1e-4f,
              float atol = 1e-5f);

/** Largest absolute elementwise difference; shapes must match. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace chimera
