#pragma once

/**
 * @file
 * The inter-block planner (Figure 3: "block decomposition" + "inter-block
 * reordering").
 *
 * For a chain it enumerates the I! block execution orders over the
 * reorderable axes (pinned kernel axes stay innermost), solves the tile
 * sizes for each order with the analytical model, and returns the order
 * with the minimal predicted data movement volume. A multi-level variant
 * plans one schedule per memory level (§IV-C), constraining inner-level
 * tiles to nest inside outer-level tiles.
 */

#include <map>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "analysis/order_equivalence.hpp"
#include "analysis/static_safety.hpp"
#include "ir/chain.hpp"
#include "model/multilevel.hpp"
#include "solver/tile_solver.hpp"

namespace chimera::plan {

class PlanCache;

/** A fully decided block schedule for one memory level. */
struct ExecutionPlan
{
    /** Block execution order: all axes, outermost first. */
    std::vector<ir::AxisId> perm;

    /** Tile size per axis. */
    std::vector<std::int64_t> tiles;

    /**
     * Concurrency class per axis (indexed by AxisId), derived by the
     * dependence analysis when the plan is made and serialized in the
     * v2 plan document. The executors consult this table — not their
     * own judgment — to pick the block loops they distribute across
     * workers. Empty on hand-assembled plans; executors then analyze
     * fresh (see effectiveConcurrency).
     */
    std::vector<analysis::AxisConcurrency> concurrency;

    /**
     * Worker count the chunking below was solved for (1 = serial plan;
     * PlannerOptions::execThreads). Part of the plan fingerprint: a
     * plan chunked for 8 workers is never served to a 1-thread run.
     */
    int plannedThreads = 1;

    /**
     * Chunk grain per axis (indexed by AxisId): how many consecutive
     * blocks of a proven-parallel region axis one dispatch chunk
     * covers. Executors group that many blocks into one worker task
     * (serially, ascending) instead of dispatching raw blocks, which
     * bounds dispatch overhead on huge block grids while the planner's
     * refinement step guarantees enough chunks for plannedThreads
     * workers. Empty (or all 1) means one block per chunk — the
     * pre-thread-aware behavior.
     */
    std::vector<std::int64_t> parallelGrain;

    /**
     * Static-safety certificate (SB01-SB04) attached by the planner
     * when PlannerOptions::staticSafety proves the schedule safe over
     * the configured shape domain. Serialized as the v2 `safety:`
     * document line when certified; default-constructed (uncertified)
     * on hand-assembled plans and documents without the line.
     */
    analysis::SafetyCertificate safety;

    /**
     * Where the order search's candidates went (enumerated / filtered /
     * symmetry-pruned / dominance-pruned / beam-pruned / solved),
     * whether maxPermutations truncated the enumeration, and beam
     * mode's certified optimality-gap bound. Serialized as the v2
     * `search:` document line and policed by PL15; absent
     * (present == false) on fixed-order and hand-assembled plans.
     */
    analysis::SearchStats search;

    /** Algorithm-1 volume prediction for this plan, bytes. */
    double predictedVolumeBytes = 0.0;

    /** Peak on-chip footprint, bytes. */
    std::int64_t memUsageBytes = 0;

    /**
     * Number of candidates actually solved (executable-order filtering
     * happens before solving and is excluded; the debug log reports the
     * filtered count). 0 means the plan was served from the plan cache.
     */
    int candidatesExamined = 0;

    /** Wall time spent planning, seconds (§VI-E overhead experiment). */
    double planSeconds = 0.0;
};

/** Planner knobs. */
struct PlannerOptions
{
    /** On-chip capacity in bytes for the single-level constraint. */
    double memCapacityBytes = 0.0;

    /** Executor tile restrictions (micro-kernel multiples etc.). */
    solver::TileConstraints constraints;

    /** Hard cap on enumerated permutations (I! can grow quickly). */
    int maxPermutations = 40320;

    /** Forwarded to Algorithm 1. */
    model::ModelOptions model;

    /** Forwarded to the tile solver. */
    int solverSweeps = 6;

    /**
     * When true (default) only orders executable with single on-chip
     * intermediate regions are considered (see model::isExecutableOrder).
     */
    bool onlyExecutableOrders = true;

    /**
     * Search pruning (analysis/order_equivalence.hpp). None, Symmetry
     * and Dominance are *exact* — the chosen plan is bitwise identical
     * to exhaustive enumeration, so they are excluded from the cache
     * key (fingerprints minted under any of them are interchangeable).
     * Beam is inexact: it solves only the beamWidth best-lower-bound
     * orders, records a certified optimality-gap bound in the plan's
     * search stats, and enters the fingerprint/cache key.
     */
    analysis::PruneMode prune = analysis::PruneMode::Dominance;

    /**
     * Orders the tile solver actually evaluates under PruneMode::Beam
     * (after exact symmetry merging). Ignored by the other modes.
     */
    int beamWidth = 8;

    /**
     * Threads for the (permutation -> tile solve) candidate loop:
     * >= 1 is exact, <= 0 defers to CHIMERA_THREADS / the hardware
     * count. The winner is reduced serially in enumeration order with
     * the same better-than predicate as the serial loop (ties break on
     * the earlier permutation), so the chosen plan is identical at
     * every thread count. Search-only: does NOT change the plan and is
     * excluded from the cache key (execThreads below is the knob that
     * changes what is planned).
     */
    int threads = 0;

    /**
     * Worker count the *executed* plan should scale to. With > 1 the
     * planner (a) clamps the capacity budget to each worker's share of
     * the topology's shared levels, (b) refines proven-parallel region
     * tiles until the parallel block grid has at least execThreads
     * chunks (preferring a worker-balanced multiple), and (c) emits the
     * chunk grain + thread count into the plan. 1 (default) reproduces
     * the thread-oblivious planner exactly. Part of the plan
     * fingerprint.
     */
    int execThreads = 1;

    /**
     * Core/cache topology for the thread-aware budgets (e.g.
     * hw::multicoreCpuTopology()). Shared levels clamp the per-worker
     * capacity to capacity / workers; an empty topology (default)
     * keeps memCapacityBytes as the only budget. Part of the plan
     * fingerprint when non-empty.
     */
    model::MachineModel topology;

    /**
     * Dispatch-grain target: the chunking step coarsens the parallel
     * grid to at most about chunksPerWorker * execThreads chunks so
     * huge block grids do not pay per-block dispatch overhead, while
     * refinement stops once the grid is a balanced multiple of the
     * worker count (or at least this many chunks per worker).
     */
    int chunksPerWorker = 4;

    /**
     * Run the static safety analyzer (SB01-SB04) on every winning plan
     * and attach the resulting certificate. On by default: the pass
     * costs well under 1% of cold planning time (fig5 reports the
     * ratio) and uncertified plans simply carry no `safety:` line —
     * violations never fail planning. Part of the cache key only when
     * disabled.
     */
    bool staticSafety = true;

    /**
     * Shape-domain widening for the certificate: axis name -> maximum
     * extent. Each named axis is certified for extents [1, max]
     * instead of its concrete extent only (e.g. {"b", 4096} certifies
     * every batch size the serve batcher may derive). Empty (default)
     * certifies the concrete shape. Part of the cache key when
     * non-empty.
     */
    std::map<std::string, std::int64_t> safetyDomain;

    /**
     * Optional plan cache consulted before enumeration and updated with
     * the winning plan after (see plan_cache.hpp). The cache key covers
     * the chain structure and every plan-affecting option above except
     * threads (planning is deterministic at any thread count). nullptr
     * plans from scratch every call.
     */
    PlanCache *cache = nullptr;

    /**
     * Self-check every winning plan with verify::verifyExecutionPlan
     * before returning it (tile ranges, executability, capacity, and the
     * brute-force Algorithm-1 recount on small shapes); a failure throws
     * with the findings report. On by default in debug builds, off in
     * release (the checks cost one extra model evaluation per plan plus
     * the recount walk). Does not affect the cache key.
     */
#ifdef NDEBUG
    bool verify = false;
#else
    bool verify = true;
#endif
};

/**
 * Tile constraints applying the paper's alpha lower bound to every
 * reorderable axis (clamped to each extent): keeps tiles cache-line
 * friendly so free axes (e.g. T_N, T_K) do not collapse to width 1.
 */
solver::TileConstraints alphaConstraints(const ir::Chain &chain,
                                         std::int64_t alpha);

/**
 * Pins the axes whose blocking makes *no* order executable: when two
 * intermediates impose a cyclic ordering (axis x must be inner to axis
 * y and vice versa — e.g. l and p in a three-GEMM chain), the later
 * intermediate's region axis is fixed to its full extent so that
 * intermediate is held as a panel. Chains without cycles get no pins.
 */
solver::TileConstraints executabilityPins(const ir::Chain &chain);

/**
 * The concurrency table an executor must obey for @p plan: the plan's
 * own table when it carries one of the right arity (the normal case —
 * and deliberately also the tampered/mis-declared case, so the dynamic
 * race checker can observe what such a plan does), else a fresh
 * dependence analysis of (chain, tiles).
 */
std::vector<analysis::AxisConcurrency>
effectiveConcurrency(const ir::Chain &chain, const ExecutionPlan &plan);

/**
 * Runs the static safety analyzer on @p plan (under the options'
 * capacity/topology/safetyDomain) and attaches the certificate to it —
 * certified only when every SB rule proves. Used by the planner after
 * chunking and by serve::PlannerGate to re-certify cached plans stored
 * before certification existed. Returns the full analysis (violations
 * and per-rule timings).
 */
analysis::SafetyAnalysis certifyPlan(const ir::Chain &chain,
                                     const PlannerOptions &options,
                                     ExecutionPlan &plan);

/**
 * The candidate block orders planChain enumerates for @p chain under
 * @p options: every permutation of the reorderable axes (the
 * maxPermutations cap applied) with the pinned axes appended
 * innermost. @p truncated (optional) reports whether the cap cut the
 * enumeration short. Exported so the search verifier can replay the
 * exact search space (OE01-OE04).
 */
std::vector<std::vector<ir::AxisId>>
enumerateCandidateOrders(const ir::Chain &chain,
                         const PlannerOptions &options,
                         bool *truncated = nullptr);

/**
 * The tile constraints the order search actually solves under:
 * options.constraints plus the pinned-axis fixes and (when
 * onlyExecutableOrders) the executability pins. The order-equivalence
 * analyzer must be built against exactly these to reason about the
 * same candidate lattice as the solver.
 */
solver::TileConstraints searchConstraints(const ir::Chain &chain,
                                          const PlannerOptions &options);

/** Human-readable order string, e.g. "m,l,k,n". */
std::string orderString(const ir::Chain &chain,
                        const std::vector<ir::AxisId> &perm);

/** Parses "m,l,k,n" into a full permutation (pinned axes appended). */
std::vector<ir::AxisId> permFromOrderString(const ir::Chain &chain,
                                            const std::string &order);

/**
 * Plans the best single-level schedule for @p chain.
 * Throws Error when no feasible schedule exists under the capacity.
 */
ExecutionPlan planChain(const ir::Chain &chain,
                        const PlannerOptions &options);

/**
 * Solves tiles for one pinned block order (no enumeration). Used by the
 * fixed-order (template-library-style) baseline and by sweeps that need
 * a specific order. Throws when the order is infeasible.
 */
ExecutionPlan planFixedOrder(const ir::Chain &chain,
                             const std::vector<ir::AxisId> &perm,
                             const PlannerOptions &options);

/** Result of multi-level planning: one schedule per machine level. */
struct MultiLevelPlan
{
    /** Schedules innermost-level first (aligned with MachineModel). */
    std::vector<model::LevelSchedule> levels;

    /** Eq. 2-3 evaluation of the planned schedules. */
    model::MultiLevelCost cost;

    double planSeconds = 0.0;
};

/**
 * Plans per-level schedules against @p machine (§IV-C). Levels are
 * planned outermost first; each inner level's tiles are constrained to
 * nest inside the enclosing level's tiles.
 */
MultiLevelPlan planChainMultiLevel(const ir::Chain &chain,
                                   const model::MachineModel &machine,
                                   const PlannerOptions &baseOptions);

} // namespace chimera::plan
