#include "plan/planner.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "analysis/dependence.hpp"
#include "ir/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/plan_cache.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/mathutil.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "verify/plan_verifier.hpp"

namespace chimera::plan {

using ir::AxisId;
using ir::Chain;

solver::TileConstraints
alphaConstraints(const Chain &chain, std::int64_t alpha)
{
    solver::TileConstraints constraints;
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        const ir::Axis &axis = chain.axes()[static_cast<std::size_t>(a)];
        // Batch never needs a width floor: it is an outer dimension of
        // every tensor, so its tile does not affect line utilization.
        if (axis.reorderable && axis.name != "b") {
            constraints.minTile[a] = std::min(alpha, axis.extent);
        }
    }
    return constraints;
}

solver::TileConstraints
executabilityPins(const Chain &chain)
{
    // Region (R) and user (U) axis sets per intermediate, over free
    // multi-extent reorderable axes.
    struct Sets
    {
        std::vector<AxisId> region;
        std::vector<AxisId> users;
    };
    std::vector<Sets> sets;
    for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
        const ir::TensorDecl &tensor = chain.tensors()[t];
        if (tensor.kind != ir::TensorKind::Intermediate) {
            continue;
        }
        Sets s;
        for (const ir::OpDecl &op : chain.ops()) {
            if (std::find(op.tensorIds.begin(), op.tensorIds.end(),
                          static_cast<int>(t)) == op.tensorIds.end()) {
                continue;
            }
            for (AxisId axis : op.loops) {
                const ir::Axis &a =
                    chain.axes()[static_cast<std::size_t>(axis)];
                if (!a.reorderable || a.extent <= 1) {
                    continue;
                }
                auto &dst = tensor.usesAxis(axis) ? s.region : s.users;
                if (std::find(dst.begin(), dst.end(), axis) == dst.end()) {
                    dst.push_back(axis);
                }
            }
        }
        sets.push_back(std::move(s));
    }

    solver::TileConstraints pins;
    auto contains = [](const std::vector<AxisId> &v, AxisId a) {
        return std::find(v.begin(), v.end(), a) != v.end();
    };
    for (std::size_t i = 0; i < sets.size(); ++i) {
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
            // Cycle: x in R_i and U_j, y in U_i and R_j. Pinning y to
            // its extent removes it from both sets and breaks the cycle
            // (the later intermediate becomes panel-resident along y).
            for (AxisId x : sets[i].region) {
                if (!contains(sets[j].users, x)) {
                    continue;
                }
                for (AxisId y : sets[i].users) {
                    if (contains(sets[j].region, y)) {
                        pins.fixed[y] =
                            chain.axes()[static_cast<std::size_t>(y)]
                                .extent;
                    }
                }
            }
        }
    }
    return pins;
}

std::vector<analysis::AxisConcurrency>
effectiveConcurrency(const ir::Chain &chain, const ExecutionPlan &plan)
{
    if (static_cast<int>(plan.concurrency.size()) == chain.numAxes()) {
        return plan.concurrency;
    }
    return analysis::analyzeConcurrency(chain, plan.tiles).kinds();
}

analysis::SafetyAnalysis
certifyPlan(const Chain &chain, const PlannerOptions &options,
            ExecutionPlan &plan)
{
    obs::Span span(obs::trace(), "plan.certify", "plan");
    analysis::ShapeDomain domain = analysis::ShapeDomain::concrete(chain);
    for (const auto &[axis, maxExtent] : options.safetyDomain) {
        domain.widen(chain, axis, maxExtent);
    }
    analysis::SafetyOptions so;
    so.memCapacityBytes = options.memCapacityBytes;
    so.topology = options.topology;
    const analysis::SafetyAnalysis sa = analysis::analyzeSafety(
        chain, plan.perm, plan.tiles, effectiveConcurrency(chain, plan),
        plan.plannedThreads, plan.parallelGrain, domain, so);
    plan.safety = sa.certificate;
    span.arg("chain", chain.name())
        .arg("certified", sa.certificate.certified ? 1 : 0);
    return sa;
}

std::string
orderString(const Chain &chain, const std::vector<AxisId> &perm)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (i != 0) {
            oss << ",";
        }
        oss << chain.axes()[static_cast<std::size_t>(perm[i])].name;
    }
    return oss.str();
}

std::vector<AxisId>
permFromOrderString(const Chain &chain, const std::string &order)
{
    // Manual split (no stringstream): runs during warm plan-cache
    // lookups, where first-stream construction cost matters.
    std::vector<AxisId> perm;
    std::size_t start = 0;
    while (start < order.size()) {
        std::size_t comma = order.find(',', start);
        if (comma == std::string::npos) {
            comma = order.size();
        }
        perm.push_back(ir::axisIdByName(
            chain, order.substr(start, comma - start)));
        start = comma + 1;
    }
    // Append any axes the string omitted (pinned kernel axes), innermost.
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        if (std::find(perm.begin(), perm.end(), a) == perm.end()) {
            perm.push_back(a);
        }
    }
    model::validatePermutation(chain, perm);
    return perm;
}

namespace {

/**
 * The capacity budget the tile solver actually gets: memCapacityBytes
 * clamped to one worker's share of the topology's tightest shared level
 * (LLC pressure — DESIGN.md §"Thread-aware planning"). With no topology
 * or a single worker this is memCapacityBytes unchanged.
 */
double
effectiveCapacityBytes(const PlannerOptions &options)
{
    return model::clampedPerWorkerBudgetBytes(
        options.memCapacityBytes, options.topology, options.execThreads);
}

/**
 * The axes whose blocks the executors distribute across workers: region
 * axes of the on-chip intermediates (the executors' region loops walk
 * exactly these) that the dependence analysis proved Parallel. Chains
 * without intermediates fall back to the output tensors' axes. Sorted
 * ascending by AxisId (deterministic).
 */
std::vector<AxisId>
parallelRegionAxes(const Chain &chain,
                   const std::vector<analysis::AxisConcurrency> &kinds)
{
    std::vector<AxisId> axes;
    auto collect = [&](ir::TensorKind kind) {
        for (const ir::TensorDecl &tensor : chain.tensors()) {
            if (tensor.kind != kind) {
                continue;
            }
            for (AxisId a = 0; a < chain.numAxes(); ++a) {
                const ir::Axis &axis =
                    chain.axes()[static_cast<std::size_t>(a)];
                if (!axis.reorderable || axis.extent <= 1 ||
                    !tensor.usesAxis(a)) {
                    continue;
                }
                if (kinds[static_cast<std::size_t>(a)] !=
                    analysis::AxisConcurrency::Parallel) {
                    continue;
                }
                if (std::find(axes.begin(), axes.end(), a) == axes.end()) {
                    axes.push_back(a);
                }
            }
        }
    };
    collect(ir::TensorKind::Intermediate);
    if (axes.empty()) {
        collect(ir::TensorKind::Output);
    }
    std::sort(axes.begin(), axes.end());
    return axes;
}

/** Blocks of @p axis under @p tiles (>= 1). */
std::int64_t
axisBlocks(const Chain &chain, const std::vector<std::int64_t> &tiles,
           AxisId axis)
{
    const std::int64_t extent =
        chain.axes()[static_cast<std::size_t>(axis)].extent;
    return ceilDiv(extent, std::max<std::int64_t>(
                               1, tiles[static_cast<std::size_t>(axis)]));
}

/** Chunks over the parallel region grid under @p grain. */
std::int64_t
chunkCount(const Chain &chain, const std::vector<std::int64_t> &tiles,
           const std::vector<std::int64_t> &grain,
           const std::vector<AxisId> &paxes)
{
    std::int64_t count = 1;
    for (AxisId a : paxes) {
        const std::int64_t g =
            grain.empty() ? 1 : grain[static_cast<std::size_t>(a)];
        count *= ceilDiv(axisBlocks(chain, tiles, a),
                         std::max<std::int64_t>(1, g));
    }
    return count;
}

/**
 * The thread-aware chunking step (runs on the winning plan only).
 *
 * 1. Refinement: while the parallel region grid has fewer blocks than
 *    plannedThreads workers (mandatory) or an unbalanced non-multiple
 *    count below chunksPerWorker * workers (best-effort), re-solve with
 *    the next-smaller candidate tile on one parallel axis — picking the
 *    re-solve with the smallest predicted volume — until the grid is
 *    worker-divisible or wide enough.
 * 2. Grain: coarsen innermost-first (doubling blocks per chunk) until
 *    at most about chunksPerWorker * workers chunks remain, never going
 *    below one chunk per worker.
 *
 * Refinement re-runs the dependence analysis after every accepted
 * re-solve (concurrency is tile-dependent), so the emitted table always
 * matches the final tiles.
 */
void
applyThreadChunking(const Chain &chain, ExecutionPlan &plan,
                    const PlannerOptions &options,
                    const solver::TileConstraints &constraints,
                    const solver::TileSolverOptions &solverOptions,
                    bool allowRefinement)
{
    const int workers = std::max(1, options.execThreads);
    plan.plannedThreads = workers;
    if (workers <= 1) {
        // Serial plans carry no chunking: byte-identical v2 documents
        // and bit-identical behavior with the pre-thread-aware planner.
        plan.parallelGrain.clear();
        return;
    }

    const std::int64_t target = workers;
    const std::int64_t balanced =
        static_cast<std::int64_t>(std::max(1, options.chunksPerWorker)) *
        target;

    std::vector<AxisId> paxes = parallelRegionAxes(chain, plan.concurrency);
    std::vector<std::int64_t> grain(
        static_cast<std::size_t>(chain.numAxes()), 1);
    std::int64_t count = chunkCount(chain, plan.tiles, grain, paxes);

    for (int iter = 0; allowRefinement && iter < 64; ++iter) {
        const bool mandatory = count < target;
        const bool unbalanced = count % target != 0 && count < balanced;
        if (!mandatory && !unbalanced) {
            break;
        }
        // Candidate refinements: cap one parallel axis at its next
        // smaller solver candidate, re-solve, keep the cheapest volume
        // among those that actually widen the grid.
        solver::TileSolution bestSol;
        std::int64_t bestCount = count;
        bool haveBest = false;
        for (AxisId a : paxes) {
            if (constraints.fixed.count(a) != 0) {
                continue;
            }
            const std::int64_t current =
                plan.tiles[static_cast<std::size_t>(a)];
            std::int64_t next = 0;
            for (std::int64_t c :
                 solver::axisTileCandidates(chain, a, constraints)) {
                if (c < current && c > next) {
                    next = c;
                }
            }
            if (next <= 0) {
                continue;
            }
            solver::TileConstraints refined = constraints;
            const auto capIt = refined.maxTile.find(a);
            if (capIt == refined.maxTile.end() || capIt->second > next) {
                refined.maxTile[a] = next;
            }
            const solver::TileSolution sol = solver::solveTiles(
                chain, plan.perm, refined, solverOptions);
            if (!sol.feasible) {
                continue;
            }
            const std::int64_t newCount =
                chunkCount(chain, sol.tiles, grain, paxes);
            if (newCount <= count) {
                continue;
            }
            const bool better =
                !haveBest || sol.volumeBytes < bestSol.volumeBytes - 0.5 ||
                (sol.volumeBytes < bestSol.volumeBytes + 0.5 &&
                 newCount > bestCount);
            if (better) {
                bestSol = sol;
                bestCount = newCount;
                haveBest = true;
            }
        }
        if (!haveBest) {
            break; // no axis can widen the grid further
        }
        plan.tiles = bestSol.tiles;
        plan.predictedVolumeBytes = bestSol.volumeBytes;
        plan.memUsageBytes = bestSol.memUsageBytes;
        plan.concurrency =
            analysis::analyzeConcurrency(chain, plan.tiles).kinds();
        paxes = parallelRegionAxes(chain, plan.concurrency);
        count = bestCount;
    }

    // Grain coarsening: merge consecutive innermost blocks into one
    // dispatch chunk while more than ~chunksPerWorker tasks per worker
    // remain. Innermost-first keeps each chunk's blocks contiguous in
    // the region walk (best reuse of the per-worker regions).
    std::vector<AxisId> byDepth; // paxes ordered outermost -> innermost
    for (AxisId a : plan.perm) {
        if (std::find(paxes.begin(), paxes.end(), a) != paxes.end()) {
            byDepth.push_back(a);
        }
    }
    while (count > balanced) {
        bool coarsened = false;
        for (auto it = byDepth.rbegin(); it != byDepth.rend(); ++it) {
            const AxisId a = *it;
            const std::size_t ai = static_cast<std::size_t>(a);
            if (ceilDiv(axisBlocks(chain, plan.tiles, a), grain[ai]) <=
                1) {
                continue;
            }
            grain[ai] *= 2;
            const std::int64_t newCount =
                chunkCount(chain, plan.tiles, grain, paxes);
            if (newCount < target) {
                grain[ai] /= 2; // would starve workers
                continue;
            }
            count = newCount;
            coarsened = true;
            break;
        }
        if (!coarsened) {
            break;
        }
    }
    plan.parallelGrain = std::move(grain);
}

/**
 * PlannerOptions::verify self-check: re-derives every claim of a freshly
 * planned schedule and throws with the findings when any fail (a planner
 * or solver bug, never a user error).
 */
void
selfCheck(const Chain &chain, const ExecutionPlan &plan,
          const PlannerOptions &options, bool requireExecutableOrder,
          const char *what)
{
    verify::PlanVerifyOptions vo = verify::planVerifyOptions(options);
    vo.requireExecutableOrder = requireExecutableOrder;
    const verify::Report report =
        verify::verifyExecutionPlan(chain, plan, vo);
    CHIMERA_CHECK(!report.hasErrors(),
                  std::string(what) + " self-check failed for chain " +
                      chain.name() + ":\n" + report.render());
}

/** Builds the full permutation: reorderable prefix + pinned innermost. */
std::vector<AxisId>
fullPermutation(const Chain &chain, const std::vector<AxisId> &reorderable,
                const std::vector<int> &orderIdx)
{
    std::vector<AxisId> perm;
    perm.reserve(static_cast<std::size_t>(chain.numAxes()));
    for (int idx : orderIdx) {
        perm.push_back(reorderable[static_cast<std::size_t>(idx)]);
    }
    for (AxisId pinned : chain.pinnedAxes()) {
        perm.push_back(pinned);
    }
    return perm;
}

/** The enumeration + solve path behind planChain (cache misses). */
ExecutionPlan
planChainUncached(const Chain &chain, const PlannerOptions &options)
{
    WallTimer timer;
    CHIMERA_CHECK(chain.reorderableAxes().size() <= 8,
                  "too many reorderable axes to enumerate");

    solver::TileSolverOptions solverOptions;
    solverOptions.memCapacityBytes = effectiveCapacityBytes(options);
    solverOptions.maxSweeps = options.solverSweeps;
    solverOptions.model = options.model;

    const solver::TileConstraints constraints =
        searchConstraints(chain, options);

    // Axes fixed to their full extent (e.g. a middle-GEMM free dimension
    // held as a full panel) have one block and relax the executability
    // filter accordingly.
    std::vector<std::int64_t> filterTiles(
        static_cast<std::size_t>(chain.numAxes()), 1);
    for (const auto &[axis, tile] : constraints.fixed) {
        filterTiles[static_cast<std::size_t>(axis)] = std::min(
            tile, chain.axes()[static_cast<std::size_t>(axis)].extent);
    }

    // Materialize the candidate orders (respecting the cap) so the
    // independent (permutation -> tile solve) steps can be distributed
    // across threads.
    obs::Span searchSpan(obs::trace(), "plan.search", "plan");
    bool truncated = false;
    const std::vector<std::vector<AxisId>> candidates =
        enumerateCandidateOrders(chain, options, &truncated);

    analysis::SearchStats stats;
    stats.present = true;
    stats.mode = options.prune;
    stats.enumerated = static_cast<std::int64_t>(candidates.size());
    stats.truncated = truncated;

    analysis::OrderAnalyzer analyzer(chain, constraints,
                                     solverOptions.memCapacityBytes,
                                     options.model);

    // Deterministic argmin: candidates are always reduced in
    // enumeration order with the exact serial better-than predicate,
    // so ties (and the +-0.5 volume slack) resolve to the same
    // permutation at every thread count. Volumes are exact integers in
    // doubles, so the predicate is a true lexicographic
    // (volume, memUsage, enumeration index) order — which is also what
    // makes symmetry and dominance pruning exact (DESIGN.md).
    ExecutionPlan best;
    bool haveBest = false;
    const auto consider = [&](std::size_t i,
                              const solver::TileSolution &sol) {
        if (!sol.feasible) {
            return;
        }
        const bool better =
            !haveBest ||
            sol.volumeBytes < best.predictedVolumeBytes - 0.5 ||
            (sol.volumeBytes < best.predictedVolumeBytes + 0.5 &&
             sol.memUsageBytes < best.memUsageBytes);
        if (better) {
            best.perm = candidates[i];
            best.tiles = sol.tiles;
            best.predictedVolumeBytes = sol.volumeBytes;
            best.memUsageBytes = sol.memUsageBytes;
            haveBest = true;
        }
    };
    ThreadPool *pool = poolForThreads(options.threads);
    const auto solveBatch = [&](const std::vector<std::size_t> &batch) {
        std::vector<solver::TileSolution> outcomes(batch.size());
        parallelFor(pool, 0, static_cast<std::int64_t>(batch.size()),
                    [&](std::int64_t j, int) {
                        outcomes[static_cast<std::size_t>(j)] =
                            solver::solveTiles(
                                chain,
                                candidates[batch[static_cast<
                                    std::size_t>(j)]],
                                constraints, solverOptions);
                    });
        stats.solved += static_cast<std::int64_t>(batch.size());
        for (std::size_t j = 0; j < batch.size(); ++j) {
            consider(batch[j], outcomes[j]);
        }
    };

    std::unordered_set<std::string> seenKeys;
    const bool useSymmetry = options.prune != analysis::PruneMode::None;
    // Serial pre-pass per candidate: symmetry-class membership, then
    // the executability filter, then (dominance only) the lower bound
    // against the best volume achieved so far.
    const auto survives = [&](std::size_t i, bool useDominance) {
        const std::vector<AxisId> &perm = candidates[i];
        if (useSymmetry &&
            !seenKeys.insert(analyzer.symmetryKey(perm)).second) {
            ++stats.symmetryPruned;
            return false;
        }
        if (options.onlyExecutableOrders &&
            !model::isExecutableOrder(chain, perm, filterTiles)) {
            ++stats.filtered;
            return false;
        }
        if (useDominance && haveBest &&
            analyzer.lowerBoundIncremental(perm) >
                best.predictedVolumeBytes + 0.5) {
            ++stats.dominancePruned;
            return false;
        }
        return true;
    };

    if (options.prune == analysis::PruneMode::Beam) {
        // One serial pass collects the survivors and their bounds,
        // then only the beamWidth best-bound orders are solved. The
        // minimum bound over the unsolved tail certifies the
        // optimality gap.
        std::vector<std::size_t> survivors;
        std::vector<double> bounds;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (!survives(i, /*useDominance=*/false)) {
                continue;
            }
            survivors.push_back(i);
            bounds.push_back(
                analyzer.lowerBoundIncremental(candidates[i]));
        }
        std::vector<std::size_t> ranked(survivors.size());
        for (std::size_t k = 0; k < ranked.size(); ++k) {
            ranked[k] = k;
        }
        std::stable_sort(ranked.begin(), ranked.end(),
                         [&](std::size_t a, std::size_t b) {
                             return bounds[a] < bounds[b];
                         });
        const std::size_t width = std::min(
            ranked.size(),
            static_cast<std::size_t>(std::max(1, options.beamWidth)));
        std::vector<std::size_t> chosen;
        for (std::size_t k = 0; k < width; ++k) {
            chosen.push_back(survivors[ranked[k]]);
        }
        std::sort(chosen.begin(), chosen.end());
        solveBatch(chosen);
        std::size_t solvedUpTo = width;
        if (!haveBest && width < ranked.size()) {
            // The beam held only infeasible orders: widen to the full
            // survivor set rather than failing a plannable chain.
            std::vector<std::size_t> rest;
            for (std::size_t k = width; k < ranked.size(); ++k) {
                rest.push_back(survivors[ranked[k]]);
            }
            std::sort(rest.begin(), rest.end());
            solveBatch(rest);
            solvedUpTo = ranked.size();
        }
        stats.beamPruned =
            static_cast<std::int64_t>(ranked.size() - solvedUpTo);
        if (haveBest && solvedUpTo < ranked.size()) {
            double minUnsolved = bounds[ranked[solvedUpTo]];
            for (std::size_t k = solvedUpTo; k < ranked.size(); ++k) {
                minUnsolved = std::min(minUnsolved, bounds[ranked[k]]);
            }
            stats.gapBoundBytes =
                static_cast<std::int64_t>(std::max(
                    0.0, best.predictedVolumeBytes - minUnsolved));
        }
    } else {
        // Fixed-size batches, independent of the thread count: the
        // pre-pass of batch B sees exactly the solutions of batches
        // < B, so every pruning decision (and every count) is
        // identical at 1, 2 or 8 search threads.
        constexpr std::size_t kBatch = 64;
        const bool useDominance =
            options.prune == analysis::PruneMode::Dominance;
        std::vector<std::size_t> batch;
        for (std::size_t lo = 0; lo < candidates.size(); lo += kBatch) {
            const std::size_t hi =
                std::min(candidates.size(), lo + kBatch);
            batch.clear();
            for (std::size_t i = lo; i < hi; ++i) {
                if (survives(i, useDominance)) {
                    batch.push_back(i);
                }
            }
            solveBatch(batch);
        }
    }
    CHIMERA_CHECK(haveBest,
                  "no feasible schedule for chain " + chain.name() +
                      " under the given memory capacity");
    best.candidatesExamined = static_cast<int>(stats.solved);
    searchSpan.arg("chain", chain.name())
        .arg("solved", static_cast<int>(stats.solved))
        .arg("filtered", static_cast<int>(stats.filtered))
        .arg("symmetry_pruned", static_cast<int>(stats.symmetryPruned))
        .arg("dominance_pruned",
             static_cast<int>(stats.dominancePruned))
        .arg("beam_pruned", static_cast<int>(stats.beamPruned))
        .arg("enumerated", static_cast<int>(stats.enumerated))
        .arg("truncated", stats.truncated ? 1 : 0)
        .arg("dv_bytes", best.predictedVolumeBytes)
        .arg("mu_bytes", best.memUsageBytes);
    searchSpan.end();
    best.concurrency =
        analysis::analyzeConcurrency(chain, best.tiles).kinds();
    applyThreadChunking(chain, best, options, constraints, solverOptions,
                        /*allowRefinement=*/true);
    if (options.staticSafety) {
        // Certification failures do not fail planning: the plan is
        // returned without a certificate (and without a `safety:`
        // document line); gates that require one re-check downstream.
        const analysis::SafetyAnalysis sa =
            certifyPlan(chain, options, best);
        if (!sa.certificate.certified) {
            CHIMERA_DEBUG("static safety refuted for "
                          << chain.name() << ": "
                          << sa.renderViolations());
        }
    }
    // The digest binds the *final* schedule (after chunking refinement
    // may have re-solved the tiles), so PL15 can tie the search claims
    // to exactly the plan that is served.
    best.search = stats;
    best.search.digest =
        analysis::searchDigest(chain, best.perm, best.tiles, best.search);
    best.planSeconds = timer.seconds();
    CHIMERA_DEBUG("planned "
                  << chain.name() << ": order "
                  << orderString(chain, best.perm) << " volume "
                  << best.predictedVolumeBytes << "B (" << stats.solved
                  << " solved, " << stats.filtered
                  << " filtered as non-executable, "
                  << stats.symmetryPruned << " symmetry-pruned, "
                  << stats.dominancePruned << " dominance-pruned, "
                  << stats.beamPruned << " beam-pruned of "
                  << stats.enumerated << " enumerated"
                  << (stats.truncated ? ", truncated" : "") << ")");
    if (options.verify) {
        selfCheck(chain, best, options, options.onlyExecutableOrders,
                  "planner");
    }
    return best;
}

} // namespace

std::vector<std::vector<AxisId>>
enumerateCandidateOrders(const Chain &chain, const PlannerOptions &options,
                         bool *truncated)
{
    const std::vector<AxisId> reorderable = chain.reorderableAxes();
    std::vector<std::vector<AxisId>> candidates;
    bool capped = false;
    for (const std::vector<int> &orderIdx :
         allPermutations(static_cast<int>(reorderable.size()))) {
        if (static_cast<int>(candidates.size()) >=
            options.maxPermutations) {
            // No longer silent: the searchTruncated flag travels with
            // the plan (and its `search:` document line), so cached
            // consumers can see the search was not exhaustive.
            CHIMERA_WARN("permutation cap reached for chain "
                         << chain.name());
            capped = true;
            break;
        }
        candidates.push_back(
            fullPermutation(chain, reorderable, orderIdx));
    }
    if (truncated != nullptr) {
        *truncated = capped;
    }
    return candidates;
}

solver::TileConstraints
searchConstraints(const Chain &chain, const PlannerOptions &options)
{
    // Pinned kernel axes execute untiled inside the micro/im2col step.
    solver::TileConstraints constraints = options.constraints;
    for (AxisId pinned : chain.pinnedAxes()) {
        constraints.fixed.emplace(
            pinned, chain.axes()[static_cast<std::size_t>(pinned)].extent);
    }
    // Break inter-intermediate ordering cycles (panel residency): with
    // these axes blocked, no order at all would be executable.
    if (options.onlyExecutableOrders) {
        for (const auto &[axis, tile] : executabilityPins(chain).fixed) {
            constraints.minTile.erase(axis);
            constraints.multipleOf.erase(axis);
            constraints.fixed[axis] = tile;
        }
    }
    return constraints;
}

ExecutionPlan
planChain(const Chain &chain, const PlannerOptions &options)
{
    obs::TraceRecorder *tracer = obs::trace();
    obs::Span span(tracer, "plan.chain", "plan");
    if (tracer != nullptr) {
        span.arg("chain", chain.name())
            .arg("fingerprint", planFingerprint(chain, options));
    }
    static obs::Counter &cacheHits =
        obs::Registry::global().counter("chimera.plan.cache_hits");
    static obs::Counter &planned =
        obs::Registry::global().counter("chimera.plan.planned");
    static obs::Histogram &planSeconds =
        obs::Registry::global().histogram("chimera.plan.plan_seconds");
    if (options.cache != nullptr) {
        if (std::optional<ExecutionPlan> cached =
                options.cache->lookup(chain, options)) {
            CHIMERA_DEBUG("plan cache hit for " << chain.name());
            cacheHits.add();
            span.arg("source", std::string("cache"))
                .arg("dv_bytes", cached->predictedVolumeBytes)
                .arg("mu_bytes", cached->memUsageBytes);
            return *cached;
        }
    }
    const ExecutionPlan best = planChainUncached(chain, options);
    planned.add();
    planSeconds.recordSeconds(best.planSeconds);
    span.arg("source", std::string("planned"))
        .arg("dv_bytes", best.predictedVolumeBytes)
        .arg("mu_bytes", best.memUsageBytes)
        .arg("candidates", best.candidatesExamined);
    if (options.cache != nullptr) {
        options.cache->store(chain, options, best);
    }
    return best;
}

ExecutionPlan
planFixedOrder(const Chain &chain, const std::vector<AxisId> &perm,
               const PlannerOptions &options)
{
    WallTimer timer;
    solver::TileSolverOptions solverOptions;
    solverOptions.memCapacityBytes = effectiveCapacityBytes(options);
    solverOptions.maxSweeps = options.solverSweeps;
    solverOptions.model = options.model;

    solver::TileConstraints constraints = options.constraints;
    for (AxisId pinned : chain.pinnedAxes()) {
        constraints.fixed.emplace(
            pinned, chain.axes()[static_cast<std::size_t>(pinned)].extent);
    }
    const solver::TileSolution sol =
        solver::solveTiles(chain, perm, constraints, solverOptions);
    CHIMERA_CHECK(sol.feasible,
                  "fixed order infeasible for chain " + chain.name());
    ExecutionPlan plan;
    plan.perm = perm;
    plan.tiles = sol.tiles;
    plan.predictedVolumeBytes = sol.volumeBytes;
    plan.memUsageBytes = sol.memUsageBytes;
    plan.candidatesExamined = 1;
    plan.concurrency =
        analysis::analyzeConcurrency(chain, plan.tiles).kinds();
    // Fixed-order plans emulate thread-oblivious libraries: they get
    // the per-worker budget and a dispatch grain, but no tile
    // refinement (the planner's edge in the scaling comparison).
    applyThreadChunking(chain, plan, options, constraints, solverOptions,
                        /*allowRefinement=*/false);
    if (options.staticSafety) {
        (void)certifyPlan(chain, options, plan);
    }
    plan.planSeconds = timer.seconds();
    if (options.verify) {
        // Baselines pin deliberately non-executable orders; only the
        // model-level claims are checked here.
        selfCheck(chain, plan, options, /*requireExecutableOrder=*/false,
                  "fixed-order planner");
    }
    return plan;
}

MultiLevelPlan
planChainMultiLevel(const Chain &chain, const model::MachineModel &machine,
                    const PlannerOptions &baseOptions)
{
    CHIMERA_CHECK(!machine.levels.empty(), "machine has no memory levels");
    WallTimer timer;

    MultiLevelPlan result;
    result.levels.resize(machine.levels.size());

    // Plan outermost level first; inner tiles nest inside outer tiles.
    // Each level's budget is one worker's share of it (full private
    // instance, capacity / workers for shared levels), so an
    // LLC-pressured shape gets smaller outer tiles at high execThreads.
    PlannerOptions options = baseOptions;
    for (std::size_t d = machine.levels.size(); d-- > 0;) {
        options.memCapacityBytes = model::perWorkerCapacityBytes(
            machine.levels[d], machine, baseOptions.execThreads);
        const ExecutionPlan levelPlan = planChain(chain, options);
        result.levels[d].perm = levelPlan.perm;
        result.levels[d].tiles = levelPlan.tiles;
        // Constrain the next (inner) level to nest inside this one.
        for (AxisId a = 0; a < chain.numAxes(); ++a) {
            options.constraints.maxTile[a] =
                levelPlan.tiles[static_cast<std::size_t>(a)];
        }
    }
    result.cost =
        model::evaluateMultiLevel(chain, machine, result.levels,
                                  baseOptions.model, baseOptions.execThreads);
    result.planSeconds = timer.seconds();
    if (baseOptions.verify) {
        // Each level already self-checked through planChain; this pass
        // adds the cross-level nesting audit (PL11), so skip the
        // per-level recount rerun.
        verify::PlanVerifyOptions vo =
            verify::planVerifyOptions(baseOptions);
        vo.recount = false;
        const verify::Report report = verify::verifyMultiLevelPlan(
            chain, machine, result.levels, vo);
        CHIMERA_CHECK(!report.hasErrors(),
                      "multi-level planner self-check failed for chain " +
                          chain.name() + ":\n" + report.render());
    }
    return result;
}

} // namespace chimera::plan
