#include "plan/planner.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "analysis/dependence.hpp"
#include "ir/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/plan_cache.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/mathutil.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "verify/plan_verifier.hpp"

namespace chimera::plan {

using ir::AxisId;
using ir::Chain;

solver::TileConstraints
alphaConstraints(const Chain &chain, std::int64_t alpha)
{
    solver::TileConstraints constraints;
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        const ir::Axis &axis = chain.axes()[static_cast<std::size_t>(a)];
        // Batch never needs a width floor: it is an outer dimension of
        // every tensor, so its tile does not affect line utilization.
        if (axis.reorderable && axis.name != "b") {
            constraints.minTile[a] = std::min(alpha, axis.extent);
        }
    }
    return constraints;
}

solver::TileConstraints
executabilityPins(const Chain &chain)
{
    // Region (R) and user (U) axis sets per intermediate, over free
    // multi-extent reorderable axes.
    struct Sets
    {
        std::vector<AxisId> region;
        std::vector<AxisId> users;
    };
    std::vector<Sets> sets;
    for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
        const ir::TensorDecl &tensor = chain.tensors()[t];
        if (tensor.kind != ir::TensorKind::Intermediate) {
            continue;
        }
        Sets s;
        for (const ir::OpDecl &op : chain.ops()) {
            if (std::find(op.tensorIds.begin(), op.tensorIds.end(),
                          static_cast<int>(t)) == op.tensorIds.end()) {
                continue;
            }
            for (AxisId axis : op.loops) {
                const ir::Axis &a =
                    chain.axes()[static_cast<std::size_t>(axis)];
                if (!a.reorderable || a.extent <= 1) {
                    continue;
                }
                auto &dst = tensor.usesAxis(axis) ? s.region : s.users;
                if (std::find(dst.begin(), dst.end(), axis) == dst.end()) {
                    dst.push_back(axis);
                }
            }
        }
        sets.push_back(std::move(s));
    }

    solver::TileConstraints pins;
    auto contains = [](const std::vector<AxisId> &v, AxisId a) {
        return std::find(v.begin(), v.end(), a) != v.end();
    };
    for (std::size_t i = 0; i < sets.size(); ++i) {
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
            // Cycle: x in R_i and U_j, y in U_i and R_j. Pinning y to
            // its extent removes it from both sets and breaks the cycle
            // (the later intermediate becomes panel-resident along y).
            for (AxisId x : sets[i].region) {
                if (!contains(sets[j].users, x)) {
                    continue;
                }
                for (AxisId y : sets[i].users) {
                    if (contains(sets[j].region, y)) {
                        pins.fixed[y] =
                            chain.axes()[static_cast<std::size_t>(y)]
                                .extent;
                    }
                }
            }
        }
    }
    return pins;
}

std::vector<analysis::AxisConcurrency>
effectiveConcurrency(const ir::Chain &chain, const ExecutionPlan &plan)
{
    if (static_cast<int>(plan.concurrency.size()) == chain.numAxes()) {
        return plan.concurrency;
    }
    return analysis::analyzeConcurrency(chain, plan.tiles).kinds();
}

analysis::SafetyAnalysis
certifyPlan(const Chain &chain, const PlannerOptions &options,
            ExecutionPlan &plan)
{
    obs::Span span(obs::trace(), "plan.certify", "plan");
    analysis::ShapeDomain domain = analysis::ShapeDomain::concrete(chain);
    for (const auto &[axis, maxExtent] : options.safetyDomain) {
        domain.widen(chain, axis, maxExtent);
    }
    analysis::SafetyOptions so;
    so.memCapacityBytes = options.memCapacityBytes;
    so.topology = options.topology;
    const analysis::SafetyAnalysis sa = analysis::analyzeSafety(
        chain, plan.perm, plan.tiles, effectiveConcurrency(chain, plan),
        plan.plannedThreads, plan.parallelGrain, domain, so);
    plan.safety = sa.certificate;
    span.arg("chain", chain.name())
        .arg("certified", sa.certificate.certified ? 1 : 0);
    return sa;
}

std::string
orderString(const Chain &chain, const std::vector<AxisId> &perm)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (i != 0) {
            oss << ",";
        }
        oss << chain.axes()[static_cast<std::size_t>(perm[i])].name;
    }
    return oss.str();
}

std::vector<AxisId>
permFromOrderString(const Chain &chain, const std::string &order)
{
    // Manual split (no stringstream): runs during warm plan-cache
    // lookups, where first-stream construction cost matters.
    std::vector<AxisId> perm;
    std::size_t start = 0;
    while (start < order.size()) {
        std::size_t comma = order.find(',', start);
        if (comma == std::string::npos) {
            comma = order.size();
        }
        perm.push_back(ir::axisIdByName(
            chain, order.substr(start, comma - start)));
        start = comma + 1;
    }
    // Append any axes the string omitted (pinned kernel axes), innermost.
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        if (std::find(perm.begin(), perm.end(), a) == perm.end()) {
            perm.push_back(a);
        }
    }
    model::validatePermutation(chain, perm);
    return perm;
}

namespace {

/**
 * The capacity budget the tile solver actually gets: memCapacityBytes
 * clamped to one worker's share of the topology's tightest shared level
 * (LLC pressure — DESIGN.md §"Thread-aware planning"). With no topology
 * or a single worker this is memCapacityBytes unchanged.
 */
double
effectiveCapacityBytes(const PlannerOptions &options)
{
    return model::clampedPerWorkerBudgetBytes(
        options.memCapacityBytes, options.topology, options.execThreads);
}

/**
 * The axes whose blocks the executors distribute across workers: region
 * axes of the on-chip intermediates (the executors' region loops walk
 * exactly these) that the dependence analysis proved Parallel. Chains
 * without intermediates fall back to the output tensors' axes. Sorted
 * ascending by AxisId (deterministic).
 */
std::vector<AxisId>
parallelRegionAxes(const Chain &chain,
                   const std::vector<analysis::AxisConcurrency> &kinds)
{
    std::vector<AxisId> axes;
    auto collect = [&](ir::TensorKind kind) {
        for (const ir::TensorDecl &tensor : chain.tensors()) {
            if (tensor.kind != kind) {
                continue;
            }
            for (AxisId a = 0; a < chain.numAxes(); ++a) {
                const ir::Axis &axis =
                    chain.axes()[static_cast<std::size_t>(a)];
                if (!axis.reorderable || axis.extent <= 1 ||
                    !tensor.usesAxis(a)) {
                    continue;
                }
                if (kinds[static_cast<std::size_t>(a)] !=
                    analysis::AxisConcurrency::Parallel) {
                    continue;
                }
                if (std::find(axes.begin(), axes.end(), a) == axes.end()) {
                    axes.push_back(a);
                }
            }
        }
    };
    collect(ir::TensorKind::Intermediate);
    if (axes.empty()) {
        collect(ir::TensorKind::Output);
    }
    std::sort(axes.begin(), axes.end());
    return axes;
}

/** Blocks of @p axis under @p tiles (>= 1). */
std::int64_t
axisBlocks(const Chain &chain, const std::vector<std::int64_t> &tiles,
           AxisId axis)
{
    const std::int64_t extent =
        chain.axes()[static_cast<std::size_t>(axis)].extent;
    return ceilDiv(extent, std::max<std::int64_t>(
                               1, tiles[static_cast<std::size_t>(axis)]));
}

/** Chunks over the parallel region grid under @p grain. */
std::int64_t
chunkCount(const Chain &chain, const std::vector<std::int64_t> &tiles,
           const std::vector<std::int64_t> &grain,
           const std::vector<AxisId> &paxes)
{
    std::int64_t count = 1;
    for (AxisId a : paxes) {
        const std::int64_t g =
            grain.empty() ? 1 : grain[static_cast<std::size_t>(a)];
        count *= ceilDiv(axisBlocks(chain, tiles, a),
                         std::max<std::int64_t>(1, g));
    }
    return count;
}

/**
 * The thread-aware chunking step (runs on the winning plan only).
 *
 * 1. Refinement: while the parallel region grid has fewer blocks than
 *    plannedThreads workers (mandatory) or an unbalanced non-multiple
 *    count below chunksPerWorker * workers (best-effort), re-solve with
 *    the next-smaller candidate tile on one parallel axis — picking the
 *    re-solve with the smallest predicted volume — until the grid is
 *    worker-divisible or wide enough.
 * 2. Grain: coarsen innermost-first (doubling blocks per chunk) until
 *    at most about chunksPerWorker * workers chunks remain, never going
 *    below one chunk per worker.
 *
 * Refinement re-runs the dependence analysis after every accepted
 * re-solve (concurrency is tile-dependent), so the emitted table always
 * matches the final tiles.
 */
void
applyThreadChunking(const Chain &chain, ExecutionPlan &plan,
                    const PlannerOptions &options,
                    const solver::TileConstraints &constraints,
                    const solver::TileSolverOptions &solverOptions,
                    bool allowRefinement)
{
    const int workers = std::max(1, options.execThreads);
    plan.plannedThreads = workers;
    if (workers <= 1) {
        // Serial plans carry no chunking: byte-identical v2 documents
        // and bit-identical behavior with the pre-thread-aware planner.
        plan.parallelGrain.clear();
        return;
    }

    const std::int64_t target = workers;
    const std::int64_t balanced =
        static_cast<std::int64_t>(std::max(1, options.chunksPerWorker)) *
        target;

    std::vector<AxisId> paxes = parallelRegionAxes(chain, plan.concurrency);
    std::vector<std::int64_t> grain(
        static_cast<std::size_t>(chain.numAxes()), 1);
    std::int64_t count = chunkCount(chain, plan.tiles, grain, paxes);

    for (int iter = 0; allowRefinement && iter < 64; ++iter) {
        const bool mandatory = count < target;
        const bool unbalanced = count % target != 0 && count < balanced;
        if (!mandatory && !unbalanced) {
            break;
        }
        // Candidate refinements: cap one parallel axis at its next
        // smaller solver candidate, re-solve, keep the cheapest volume
        // among those that actually widen the grid.
        solver::TileSolution bestSol;
        std::int64_t bestCount = count;
        bool haveBest = false;
        for (AxisId a : paxes) {
            if (constraints.fixed.count(a) != 0) {
                continue;
            }
            const std::int64_t current =
                plan.tiles[static_cast<std::size_t>(a)];
            std::int64_t next = 0;
            for (std::int64_t c :
                 solver::axisTileCandidates(chain, a, constraints)) {
                if (c < current && c > next) {
                    next = c;
                }
            }
            if (next <= 0) {
                continue;
            }
            solver::TileConstraints refined = constraints;
            const auto capIt = refined.maxTile.find(a);
            if (capIt == refined.maxTile.end() || capIt->second > next) {
                refined.maxTile[a] = next;
            }
            const solver::TileSolution sol = solver::solveTiles(
                chain, plan.perm, refined, solverOptions);
            if (!sol.feasible) {
                continue;
            }
            const std::int64_t newCount =
                chunkCount(chain, sol.tiles, grain, paxes);
            if (newCount <= count) {
                continue;
            }
            const bool better =
                !haveBest || sol.volumeBytes < bestSol.volumeBytes - 0.5 ||
                (sol.volumeBytes < bestSol.volumeBytes + 0.5 &&
                 newCount > bestCount);
            if (better) {
                bestSol = sol;
                bestCount = newCount;
                haveBest = true;
            }
        }
        if (!haveBest) {
            break; // no axis can widen the grid further
        }
        plan.tiles = bestSol.tiles;
        plan.predictedVolumeBytes = bestSol.volumeBytes;
        plan.memUsageBytes = bestSol.memUsageBytes;
        plan.concurrency =
            analysis::analyzeConcurrency(chain, plan.tiles).kinds();
        paxes = parallelRegionAxes(chain, plan.concurrency);
        count = bestCount;
    }

    // Grain coarsening: merge consecutive innermost blocks into one
    // dispatch chunk while more than ~chunksPerWorker tasks per worker
    // remain. Innermost-first keeps each chunk's blocks contiguous in
    // the region walk (best reuse of the per-worker regions).
    std::vector<AxisId> byDepth; // paxes ordered outermost -> innermost
    for (AxisId a : plan.perm) {
        if (std::find(paxes.begin(), paxes.end(), a) != paxes.end()) {
            byDepth.push_back(a);
        }
    }
    while (count > balanced) {
        bool coarsened = false;
        for (auto it = byDepth.rbegin(); it != byDepth.rend(); ++it) {
            const AxisId a = *it;
            const std::size_t ai = static_cast<std::size_t>(a);
            if (ceilDiv(axisBlocks(chain, plan.tiles, a), grain[ai]) <=
                1) {
                continue;
            }
            grain[ai] *= 2;
            const std::int64_t newCount =
                chunkCount(chain, plan.tiles, grain, paxes);
            if (newCount < target) {
                grain[ai] /= 2; // would starve workers
                continue;
            }
            count = newCount;
            coarsened = true;
            break;
        }
        if (!coarsened) {
            break;
        }
    }
    plan.parallelGrain = std::move(grain);
}

/**
 * PlannerOptions::verify self-check: re-derives every claim of a freshly
 * planned schedule and throws with the findings when any fail (a planner
 * or solver bug, never a user error).
 */
void
selfCheck(const Chain &chain, const ExecutionPlan &plan,
          const PlannerOptions &options, bool requireExecutableOrder,
          const char *what)
{
    verify::PlanVerifyOptions vo = verify::planVerifyOptions(options);
    vo.requireExecutableOrder = requireExecutableOrder;
    const verify::Report report =
        verify::verifyExecutionPlan(chain, plan, vo);
    CHIMERA_CHECK(!report.hasErrors(),
                  std::string(what) + " self-check failed for chain " +
                      chain.name() + ":\n" + report.render());
}

/** Builds the full permutation: reorderable prefix + pinned innermost. */
std::vector<AxisId>
fullPermutation(const Chain &chain, const std::vector<AxisId> &reorderable,
                const std::vector<int> &orderIdx)
{
    std::vector<AxisId> perm;
    perm.reserve(static_cast<std::size_t>(chain.numAxes()));
    for (int idx : orderIdx) {
        perm.push_back(reorderable[static_cast<std::size_t>(idx)]);
    }
    for (AxisId pinned : chain.pinnedAxes()) {
        perm.push_back(pinned);
    }
    return perm;
}

/** The enumeration + solve path behind planChain (cache misses). */
ExecutionPlan
planChainUncached(const Chain &chain, const PlannerOptions &options)
{
    WallTimer timer;
    const std::vector<AxisId> reorderable = chain.reorderableAxes();
    CHIMERA_CHECK(reorderable.size() <= 8,
                  "too many reorderable axes to enumerate");

    solver::TileSolverOptions solverOptions;
    solverOptions.memCapacityBytes = effectiveCapacityBytes(options);
    solverOptions.maxSweeps = options.solverSweeps;
    solverOptions.model = options.model;

    // Pinned kernel axes execute untiled inside the micro/im2col step.
    solver::TileConstraints constraints = options.constraints;
    for (AxisId pinned : chain.pinnedAxes()) {
        constraints.fixed.emplace(
            pinned, chain.axes()[static_cast<std::size_t>(pinned)].extent);
    }
    // Break inter-intermediate ordering cycles (panel residency): with
    // these axes blocked, no order at all would be executable.
    if (options.onlyExecutableOrders) {
        for (const auto &[axis, tile] : executabilityPins(chain).fixed) {
            constraints.minTile.erase(axis);
            constraints.multipleOf.erase(axis);
            constraints.fixed[axis] = tile;
        }
    }

    // Axes fixed to their full extent (e.g. a middle-GEMM free dimension
    // held as a full panel) have one block and relax the executability
    // filter accordingly.
    std::vector<std::int64_t> filterTiles(
        static_cast<std::size_t>(chain.numAxes()), 1);
    for (const auto &[axis, tile] : constraints.fixed) {
        filterTiles[static_cast<std::size_t>(axis)] = std::min(
            tile, chain.axes()[static_cast<std::size_t>(axis)].extent);
    }

    // Materialize the candidate orders (respecting the cap) so the
    // independent (permutation -> tile solve) steps can be distributed
    // across threads.
    obs::Span searchSpan(obs::trace(), "plan.search", "plan");
    std::vector<std::vector<AxisId>> candidates;
    for (const std::vector<int> &orderIdx :
         allPermutations(static_cast<int>(reorderable.size()))) {
        if (static_cast<int>(candidates.size()) >=
            options.maxPermutations) {
            CHIMERA_WARN("permutation cap reached for chain "
                         << chain.name());
            break;
        }
        candidates.push_back(
            fullPermutation(chain, reorderable, orderIdx));
    }

    std::vector<solver::TileSolution> outcomes(candidates.size());
    std::vector<char> filtered(candidates.size(), 0);
    parallelFor(poolForThreads(options.threads), 0,
                static_cast<std::int64_t>(candidates.size()),
                [&](std::int64_t i, int) {
                    const std::vector<AxisId> &perm =
                        candidates[static_cast<std::size_t>(i)];
                    if (options.onlyExecutableOrders &&
                        !model::isExecutableOrder(chain, perm,
                                                  filterTiles)) {
                        // default-constructed outcome: infeasible
                        filtered[static_cast<std::size_t>(i)] = 1;
                        return;
                    }
                    outcomes[static_cast<std::size_t>(i)] =
                        solver::solveTiles(chain, perm, constraints,
                                           solverOptions);
                });

    // Deterministic argmin: reduce in enumeration order with the exact
    // serial better-than predicate, so ties (and the +-0.5 volume
    // slack) resolve to the same permutation at every thread count.
    ExecutionPlan best;
    bool haveBest = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const solver::TileSolution &sol = outcomes[i];
        if (!sol.feasible) {
            continue;
        }
        const bool better =
            !haveBest || sol.volumeBytes < best.predictedVolumeBytes - 0.5 ||
            (sol.volumeBytes < best.predictedVolumeBytes + 0.5 &&
             sol.memUsageBytes < best.memUsageBytes);
        if (better) {
            best.perm = candidates[i];
            best.tiles = sol.tiles;
            best.predictedVolumeBytes = sol.volumeBytes;
            best.memUsageBytes = sol.memUsageBytes;
            haveBest = true;
        }
    }
    CHIMERA_CHECK(haveBest,
                  "no feasible schedule for chain " + chain.name() +
                      " under the given memory capacity");
    const int filteredCount = static_cast<int>(
        std::count(filtered.begin(), filtered.end(), char(1)));
    best.candidatesExamined =
        static_cast<int>(candidates.size()) - filteredCount;
    searchSpan.arg("chain", chain.name())
        .arg("solved", best.candidatesExamined)
        .arg("filtered", filteredCount)
        .arg("dv_bytes", best.predictedVolumeBytes)
        .arg("mu_bytes", best.memUsageBytes);
    searchSpan.end();
    best.concurrency =
        analysis::analyzeConcurrency(chain, best.tiles).kinds();
    applyThreadChunking(chain, best, options, constraints, solverOptions,
                        /*allowRefinement=*/true);
    if (options.staticSafety) {
        // Certification failures do not fail planning: the plan is
        // returned without a certificate (and without a `safety:`
        // document line); gates that require one re-check downstream.
        const analysis::SafetyAnalysis sa =
            certifyPlan(chain, options, best);
        if (!sa.certificate.certified) {
            CHIMERA_DEBUG("static safety refuted for "
                          << chain.name() << ": "
                          << sa.renderViolations());
        }
    }
    best.planSeconds = timer.seconds();
    CHIMERA_DEBUG("planned " << chain.name() << ": order "
                             << orderString(chain, best.perm) << " volume "
                             << best.predictedVolumeBytes << "B ("
                             << best.candidatesExamined << " solved, "
                             << filteredCount
                             << " filtered as non-executable)");
    if (options.verify) {
        selfCheck(chain, best, options, options.onlyExecutableOrders,
                  "planner");
    }
    return best;
}

} // namespace

ExecutionPlan
planChain(const Chain &chain, const PlannerOptions &options)
{
    obs::TraceRecorder *tracer = obs::trace();
    obs::Span span(tracer, "plan.chain", "plan");
    if (tracer != nullptr) {
        span.arg("chain", chain.name())
            .arg("fingerprint", planFingerprint(chain, options));
    }
    static obs::Counter &cacheHits =
        obs::Registry::global().counter("chimera.plan.cache_hits");
    static obs::Counter &planned =
        obs::Registry::global().counter("chimera.plan.planned");
    static obs::Histogram &planSeconds =
        obs::Registry::global().histogram("chimera.plan.plan_seconds");
    if (options.cache != nullptr) {
        if (std::optional<ExecutionPlan> cached =
                options.cache->lookup(chain, options)) {
            CHIMERA_DEBUG("plan cache hit for " << chain.name());
            cacheHits.add();
            span.arg("source", std::string("cache"))
                .arg("dv_bytes", cached->predictedVolumeBytes)
                .arg("mu_bytes", cached->memUsageBytes);
            return *cached;
        }
    }
    const ExecutionPlan best = planChainUncached(chain, options);
    planned.add();
    planSeconds.recordSeconds(best.planSeconds);
    span.arg("source", std::string("planned"))
        .arg("dv_bytes", best.predictedVolumeBytes)
        .arg("mu_bytes", best.memUsageBytes)
        .arg("candidates", best.candidatesExamined);
    if (options.cache != nullptr) {
        options.cache->store(chain, options, best);
    }
    return best;
}

ExecutionPlan
planFixedOrder(const Chain &chain, const std::vector<AxisId> &perm,
               const PlannerOptions &options)
{
    WallTimer timer;
    solver::TileSolverOptions solverOptions;
    solverOptions.memCapacityBytes = effectiveCapacityBytes(options);
    solverOptions.maxSweeps = options.solverSweeps;
    solverOptions.model = options.model;

    solver::TileConstraints constraints = options.constraints;
    for (AxisId pinned : chain.pinnedAxes()) {
        constraints.fixed.emplace(
            pinned, chain.axes()[static_cast<std::size_t>(pinned)].extent);
    }
    const solver::TileSolution sol =
        solver::solveTiles(chain, perm, constraints, solverOptions);
    CHIMERA_CHECK(sol.feasible,
                  "fixed order infeasible for chain " + chain.name());
    ExecutionPlan plan;
    plan.perm = perm;
    plan.tiles = sol.tiles;
    plan.predictedVolumeBytes = sol.volumeBytes;
    plan.memUsageBytes = sol.memUsageBytes;
    plan.candidatesExamined = 1;
    plan.concurrency =
        analysis::analyzeConcurrency(chain, plan.tiles).kinds();
    // Fixed-order plans emulate thread-oblivious libraries: they get
    // the per-worker budget and a dispatch grain, but no tile
    // refinement (the planner's edge in the scaling comparison).
    applyThreadChunking(chain, plan, options, constraints, solverOptions,
                        /*allowRefinement=*/false);
    if (options.staticSafety) {
        (void)certifyPlan(chain, options, plan);
    }
    plan.planSeconds = timer.seconds();
    if (options.verify) {
        // Baselines pin deliberately non-executable orders; only the
        // model-level claims are checked here.
        selfCheck(chain, plan, options, /*requireExecutableOrder=*/false,
                  "fixed-order planner");
    }
    return plan;
}

MultiLevelPlan
planChainMultiLevel(const Chain &chain, const model::MachineModel &machine,
                    const PlannerOptions &baseOptions)
{
    CHIMERA_CHECK(!machine.levels.empty(), "machine has no memory levels");
    WallTimer timer;

    MultiLevelPlan result;
    result.levels.resize(machine.levels.size());

    // Plan outermost level first; inner tiles nest inside outer tiles.
    // Each level's budget is one worker's share of it (full private
    // instance, capacity / workers for shared levels), so an
    // LLC-pressured shape gets smaller outer tiles at high execThreads.
    PlannerOptions options = baseOptions;
    for (std::size_t d = machine.levels.size(); d-- > 0;) {
        options.memCapacityBytes = model::perWorkerCapacityBytes(
            machine.levels[d], machine, baseOptions.execThreads);
        const ExecutionPlan levelPlan = planChain(chain, options);
        result.levels[d].perm = levelPlan.perm;
        result.levels[d].tiles = levelPlan.tiles;
        // Constrain the next (inner) level to nest inside this one.
        for (AxisId a = 0; a < chain.numAxes(); ++a) {
            options.constraints.maxTile[a] =
                levelPlan.tiles[static_cast<std::size_t>(a)];
        }
    }
    result.cost =
        model::evaluateMultiLevel(chain, machine, result.levels,
                                  baseOptions.model, baseOptions.execThreads);
    result.planSeconds = timer.seconds();
    if (baseOptions.verify) {
        // Each level already self-checked through planChain; this pass
        // adds the cross-level nesting audit (PL11), so skip the
        // per-level recount rerun.
        verify::PlanVerifyOptions vo =
            verify::planVerifyOptions(baseOptions);
        vo.recount = false;
        const verify::Report report = verify::verifyMultiLevelPlan(
            chain, machine, result.levels, vo);
        CHIMERA_CHECK(!report.hasErrors(),
                      "multi-level planner self-check failed for chain " +
                          chain.name() + ":\n" + report.render());
    }
    return result;
}

} // namespace chimera::plan
