#include "plan/planner.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/dependence.hpp"
#include "ir/builders.hpp"
#include "plan/plan_cache.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/mathutil.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "verify/plan_verifier.hpp"

namespace chimera::plan {

using ir::AxisId;
using ir::Chain;

solver::TileConstraints
alphaConstraints(const Chain &chain, std::int64_t alpha)
{
    solver::TileConstraints constraints;
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        const ir::Axis &axis = chain.axes()[static_cast<std::size_t>(a)];
        // Batch never needs a width floor: it is an outer dimension of
        // every tensor, so its tile does not affect line utilization.
        if (axis.reorderable && axis.name != "b") {
            constraints.minTile[a] = std::min(alpha, axis.extent);
        }
    }
    return constraints;
}

solver::TileConstraints
executabilityPins(const Chain &chain)
{
    // Region (R) and user (U) axis sets per intermediate, over free
    // multi-extent reorderable axes.
    struct Sets
    {
        std::vector<AxisId> region;
        std::vector<AxisId> users;
    };
    std::vector<Sets> sets;
    for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
        const ir::TensorDecl &tensor = chain.tensors()[t];
        if (tensor.kind != ir::TensorKind::Intermediate) {
            continue;
        }
        Sets s;
        for (const ir::OpDecl &op : chain.ops()) {
            if (std::find(op.tensorIds.begin(), op.tensorIds.end(),
                          static_cast<int>(t)) == op.tensorIds.end()) {
                continue;
            }
            for (AxisId axis : op.loops) {
                const ir::Axis &a =
                    chain.axes()[static_cast<std::size_t>(axis)];
                if (!a.reorderable || a.extent <= 1) {
                    continue;
                }
                auto &dst = tensor.usesAxis(axis) ? s.region : s.users;
                if (std::find(dst.begin(), dst.end(), axis) == dst.end()) {
                    dst.push_back(axis);
                }
            }
        }
        sets.push_back(std::move(s));
    }

    solver::TileConstraints pins;
    auto contains = [](const std::vector<AxisId> &v, AxisId a) {
        return std::find(v.begin(), v.end(), a) != v.end();
    };
    for (std::size_t i = 0; i < sets.size(); ++i) {
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
            // Cycle: x in R_i and U_j, y in U_i and R_j. Pinning y to
            // its extent removes it from both sets and breaks the cycle
            // (the later intermediate becomes panel-resident along y).
            for (AxisId x : sets[i].region) {
                if (!contains(sets[j].users, x)) {
                    continue;
                }
                for (AxisId y : sets[i].users) {
                    if (contains(sets[j].region, y)) {
                        pins.fixed[y] =
                            chain.axes()[static_cast<std::size_t>(y)]
                                .extent;
                    }
                }
            }
        }
    }
    return pins;
}

std::vector<analysis::AxisConcurrency>
effectiveConcurrency(const ir::Chain &chain, const ExecutionPlan &plan)
{
    if (static_cast<int>(plan.concurrency.size()) == chain.numAxes()) {
        return plan.concurrency;
    }
    return analysis::analyzeConcurrency(chain, plan.tiles).kinds();
}

std::string
orderString(const Chain &chain, const std::vector<AxisId> &perm)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (i != 0) {
            oss << ",";
        }
        oss << chain.axes()[static_cast<std::size_t>(perm[i])].name;
    }
    return oss.str();
}

std::vector<AxisId>
permFromOrderString(const Chain &chain, const std::string &order)
{
    // Manual split (no stringstream): runs during warm plan-cache
    // lookups, where first-stream construction cost matters.
    std::vector<AxisId> perm;
    std::size_t start = 0;
    while (start < order.size()) {
        std::size_t comma = order.find(',', start);
        if (comma == std::string::npos) {
            comma = order.size();
        }
        perm.push_back(ir::axisIdByName(
            chain, order.substr(start, comma - start)));
        start = comma + 1;
    }
    // Append any axes the string omitted (pinned kernel axes), innermost.
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        if (std::find(perm.begin(), perm.end(), a) == perm.end()) {
            perm.push_back(a);
        }
    }
    model::validatePermutation(chain, perm);
    return perm;
}

namespace {

/**
 * PlannerOptions::verify self-check: re-derives every claim of a freshly
 * planned schedule and throws with the findings when any fail (a planner
 * or solver bug, never a user error).
 */
void
selfCheck(const Chain &chain, const ExecutionPlan &plan,
          const PlannerOptions &options, bool requireExecutableOrder,
          const char *what)
{
    verify::PlanVerifyOptions vo = verify::planVerifyOptions(options);
    vo.requireExecutableOrder = requireExecutableOrder;
    const verify::Report report =
        verify::verifyExecutionPlan(chain, plan, vo);
    CHIMERA_CHECK(!report.hasErrors(),
                  std::string(what) + " self-check failed for chain " +
                      chain.name() + ":\n" + report.render());
}

/** Builds the full permutation: reorderable prefix + pinned innermost. */
std::vector<AxisId>
fullPermutation(const Chain &chain, const std::vector<AxisId> &reorderable,
                const std::vector<int> &orderIdx)
{
    std::vector<AxisId> perm;
    perm.reserve(static_cast<std::size_t>(chain.numAxes()));
    for (int idx : orderIdx) {
        perm.push_back(reorderable[static_cast<std::size_t>(idx)]);
    }
    for (AxisId pinned : chain.pinnedAxes()) {
        perm.push_back(pinned);
    }
    return perm;
}

/** The enumeration + solve path behind planChain (cache misses). */
ExecutionPlan
planChainUncached(const Chain &chain, const PlannerOptions &options)
{
    WallTimer timer;
    const std::vector<AxisId> reorderable = chain.reorderableAxes();
    CHIMERA_CHECK(reorderable.size() <= 8,
                  "too many reorderable axes to enumerate");

    solver::TileSolverOptions solverOptions;
    solverOptions.memCapacityBytes = options.memCapacityBytes;
    solverOptions.maxSweeps = options.solverSweeps;
    solverOptions.model = options.model;

    // Pinned kernel axes execute untiled inside the micro/im2col step.
    solver::TileConstraints constraints = options.constraints;
    for (AxisId pinned : chain.pinnedAxes()) {
        constraints.fixed.emplace(
            pinned, chain.axes()[static_cast<std::size_t>(pinned)].extent);
    }
    // Break inter-intermediate ordering cycles (panel residency): with
    // these axes blocked, no order at all would be executable.
    if (options.onlyExecutableOrders) {
        for (const auto &[axis, tile] : executabilityPins(chain).fixed) {
            constraints.minTile.erase(axis);
            constraints.multipleOf.erase(axis);
            constraints.fixed[axis] = tile;
        }
    }

    // Axes fixed to their full extent (e.g. a middle-GEMM free dimension
    // held as a full panel) have one block and relax the executability
    // filter accordingly.
    std::vector<std::int64_t> filterTiles(
        static_cast<std::size_t>(chain.numAxes()), 1);
    for (const auto &[axis, tile] : constraints.fixed) {
        filterTiles[static_cast<std::size_t>(axis)] = std::min(
            tile, chain.axes()[static_cast<std::size_t>(axis)].extent);
    }

    // Materialize the candidate orders (respecting the cap) so the
    // independent (permutation -> tile solve) steps can be distributed
    // across threads.
    std::vector<std::vector<AxisId>> candidates;
    for (const std::vector<int> &orderIdx :
         allPermutations(static_cast<int>(reorderable.size()))) {
        if (static_cast<int>(candidates.size()) >=
            options.maxPermutations) {
            CHIMERA_WARN("permutation cap reached for chain "
                         << chain.name());
            break;
        }
        candidates.push_back(
            fullPermutation(chain, reorderable, orderIdx));
    }

    std::vector<solver::TileSolution> outcomes(candidates.size());
    std::vector<char> filtered(candidates.size(), 0);
    parallelFor(poolForThreads(options.threads), 0,
                static_cast<std::int64_t>(candidates.size()),
                [&](std::int64_t i, int) {
                    const std::vector<AxisId> &perm =
                        candidates[static_cast<std::size_t>(i)];
                    if (options.onlyExecutableOrders &&
                        !model::isExecutableOrder(chain, perm,
                                                  filterTiles)) {
                        // default-constructed outcome: infeasible
                        filtered[static_cast<std::size_t>(i)] = 1;
                        return;
                    }
                    outcomes[static_cast<std::size_t>(i)] =
                        solver::solveTiles(chain, perm, constraints,
                                           solverOptions);
                });

    // Deterministic argmin: reduce in enumeration order with the exact
    // serial better-than predicate, so ties (and the +-0.5 volume
    // slack) resolve to the same permutation at every thread count.
    ExecutionPlan best;
    bool haveBest = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const solver::TileSolution &sol = outcomes[i];
        if (!sol.feasible) {
            continue;
        }
        const bool better =
            !haveBest || sol.volumeBytes < best.predictedVolumeBytes - 0.5 ||
            (sol.volumeBytes < best.predictedVolumeBytes + 0.5 &&
             sol.memUsageBytes < best.memUsageBytes);
        if (better) {
            best.perm = candidates[i];
            best.tiles = sol.tiles;
            best.predictedVolumeBytes = sol.volumeBytes;
            best.memUsageBytes = sol.memUsageBytes;
            haveBest = true;
        }
    }
    CHIMERA_CHECK(haveBest,
                  "no feasible schedule for chain " + chain.name() +
                      " under the given memory capacity");
    const int filteredCount = static_cast<int>(
        std::count(filtered.begin(), filtered.end(), char(1)));
    best.candidatesExamined =
        static_cast<int>(candidates.size()) - filteredCount;
    best.concurrency =
        analysis::analyzeConcurrency(chain, best.tiles).kinds();
    best.planSeconds = timer.seconds();
    CHIMERA_DEBUG("planned " << chain.name() << ": order "
                             << orderString(chain, best.perm) << " volume "
                             << best.predictedVolumeBytes << "B ("
                             << best.candidatesExamined << " solved, "
                             << filteredCount
                             << " filtered as non-executable)");
    if (options.verify) {
        selfCheck(chain, best, options, options.onlyExecutableOrders,
                  "planner");
    }
    return best;
}

} // namespace

ExecutionPlan
planChain(const Chain &chain, const PlannerOptions &options)
{
    if (options.cache != nullptr) {
        if (std::optional<ExecutionPlan> cached =
                options.cache->lookup(chain, options)) {
            CHIMERA_DEBUG("plan cache hit for " << chain.name());
            return *cached;
        }
    }
    const ExecutionPlan best = planChainUncached(chain, options);
    if (options.cache != nullptr) {
        options.cache->store(chain, options, best);
    }
    return best;
}

ExecutionPlan
planFixedOrder(const Chain &chain, const std::vector<AxisId> &perm,
               const PlannerOptions &options)
{
    WallTimer timer;
    solver::TileSolverOptions solverOptions;
    solverOptions.memCapacityBytes = options.memCapacityBytes;
    solverOptions.maxSweeps = options.solverSweeps;
    solverOptions.model = options.model;

    solver::TileConstraints constraints = options.constraints;
    for (AxisId pinned : chain.pinnedAxes()) {
        constraints.fixed.emplace(
            pinned, chain.axes()[static_cast<std::size_t>(pinned)].extent);
    }
    const solver::TileSolution sol =
        solver::solveTiles(chain, perm, constraints, solverOptions);
    CHIMERA_CHECK(sol.feasible,
                  "fixed order infeasible for chain " + chain.name());
    ExecutionPlan plan;
    plan.perm = perm;
    plan.tiles = sol.tiles;
    plan.predictedVolumeBytes = sol.volumeBytes;
    plan.memUsageBytes = sol.memUsageBytes;
    plan.candidatesExamined = 1;
    plan.concurrency =
        analysis::analyzeConcurrency(chain, plan.tiles).kinds();
    plan.planSeconds = timer.seconds();
    if (options.verify) {
        // Baselines pin deliberately non-executable orders; only the
        // model-level claims are checked here.
        selfCheck(chain, plan, options, /*requireExecutableOrder=*/false,
                  "fixed-order planner");
    }
    return plan;
}

MultiLevelPlan
planChainMultiLevel(const Chain &chain, const model::MachineModel &machine,
                    const PlannerOptions &baseOptions)
{
    CHIMERA_CHECK(!machine.levels.empty(), "machine has no memory levels");
    WallTimer timer;

    MultiLevelPlan result;
    result.levels.resize(machine.levels.size());

    // Plan outermost level first; inner tiles nest inside outer tiles.
    PlannerOptions options = baseOptions;
    for (std::size_t d = machine.levels.size(); d-- > 0;) {
        options.memCapacityBytes = machine.levels[d].capacityBytes;
        const ExecutionPlan levelPlan = planChain(chain, options);
        result.levels[d].perm = levelPlan.perm;
        result.levels[d].tiles = levelPlan.tiles;
        // Constrain the next (inner) level to nest inside this one.
        for (AxisId a = 0; a < chain.numAxes(); ++a) {
            options.constraints.maxTile[a] =
                levelPlan.tiles[static_cast<std::size_t>(a)];
        }
    }
    result.cost = model::evaluateMultiLevel(chain, machine, result.levels,
                                            baseOptions.model);
    result.planSeconds = timer.seconds();
    if (baseOptions.verify) {
        // Each level already self-checked through planChain; this pass
        // adds the cross-level nesting audit (PL11), so skip the
        // per-level recount rerun.
        verify::PlanVerifyOptions vo =
            verify::planVerifyOptions(baseOptions);
        vo.recount = false;
        const verify::Report report = verify::verifyMultiLevelPlan(
            chain, machine, result.levels, vo);
        CHIMERA_CHECK(!report.hasErrors(),
                      "multi-level planner self-check failed for chain " +
                          chain.name() + ":\n" + report.render());
    }
    return result;
}

} // namespace chimera::plan
