#include "plan/plan_io.hpp"

#include <set>
#include <sstream>

#include "ir/builders.hpp"
#include "model/data_movement.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace chimera::plan {

namespace {

std::string
lineContext(int lineNumber, const std::string &line)
{
    return "plan document line " + std::to_string(lineNumber) + " (\"" +
           line + "\")";
}

} // namespace

std::string
serializePlan(const ir::Chain &chain, const ExecutionPlan &plan,
              const std::string &fingerprint)
{
    model::validatePermutation(chain, plan.perm);
    model::validateTiles(chain, plan.tiles);
    std::ostringstream out;
    out << "chimera-plan v2\n";
    if (!fingerprint.empty()) {
        out << "fingerprint: " << fingerprint << "\n";
    }
    out << "chain: " << chain.name() << "\n";
    out << "order: " << orderString(chain, plan.perm) << "\n";
    out << "tiles:";
    for (int a = 0; a < chain.numAxes(); ++a) {
        out << " " << chain.axes()[static_cast<std::size_t>(a)].name << "="
            << plan.tiles[static_cast<std::size_t>(a)];
    }
    out << "\n";
    out << "volume-bytes: " << static_cast<std::int64_t>(
                                   plan.predictedVolumeBytes)
        << "\n";
    out << "mem-bytes: " << plan.memUsageBytes << "\n";
    return out.str();
}

ExecutionPlan
deserializePlan(const ir::Chain &chain, const std::string &text,
                const std::string &expectedFingerprint)
{
    // Manual line iteration (no istringstream): this runs on the plan
    // cache's warm lookup path, where a fresh process pays ~100us for
    // its first stream construction alone.
    std::size_t cursor = 0;
    auto nextLine = [&text, &cursor](std::string &out) {
        if (cursor >= text.size()) {
            return false;
        }
        std::size_t nl = text.find('\n', cursor);
        if (nl == std::string::npos) {
            nl = text.size();
        }
        out = text.substr(cursor, nl - cursor);
        cursor = nl + 1;
        if (!out.empty() && out.back() == '\r') {
            out.pop_back();
        }
        return true;
    };

    std::string line;
    CHIMERA_CHECK(nextLine(line), "empty plan document");
    CHIMERA_CHECK(line == "chimera-plan v1" || line == "chimera-plan v2",
                  "plan document line 1: not a chimera-plan v1/v2 header"
                  " (\"" +
                      line + "\")");

    ExecutionPlan plan;
    plan.tiles.assign(static_cast<std::size_t>(chain.numAxes()), 0);
    std::string fingerprint;
    std::set<std::string> seenKeys;
    bool haveOrder = false;
    bool haveTiles = false;
    int lineNumber = 1;
    while (nextLine(line)) {
        ++lineNumber;
        if (line.empty()) {
            continue;
        }
        const std::string context = lineContext(lineNumber, line);
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            throw Error(context + ": expected \"key: value\"");
        }
        const std::string key = line.substr(0, colon);
        std::string value = line.substr(colon + 1);
        if (!value.empty() && value.front() == ' ') {
            value.erase(0, 1);
        }
        if (!seenKeys.insert(key).second) {
            throw Error(context + ": duplicate key \"" + key + "\"");
        }
        if (key == "chain") {
            // Informational; the caller supplies the chain to bind to.
        } else if (key == "fingerprint") {
            fingerprint = value;
        } else if (key == "order") {
            plan.perm = permFromOrderString(chain, value);
            haveOrder = true;
        } else if (key == "tiles") {
            std::set<ir::AxisId> seenAxes;
            std::size_t tokenStart = 0;
            while (tokenStart < value.size()) {
                tokenStart = value.find_first_not_of(" \t", tokenStart);
                if (tokenStart == std::string::npos) {
                    break;
                }
                std::size_t tokenEnd =
                    value.find_first_of(" \t", tokenStart);
                if (tokenEnd == std::string::npos) {
                    tokenEnd = value.size();
                }
                const std::string token =
                    value.substr(tokenStart, tokenEnd - tokenStart);
                tokenStart = tokenEnd;
                const std::size_t eq = token.find('=');
                if (eq == std::string::npos) {
                    throw Error(context + ": malformed tile token \"" +
                                token + "\"");
                }
                const ir::AxisId axis =
                    ir::axisIdByName(chain, token.substr(0, eq));
                if (!seenAxes.insert(axis).second) {
                    throw Error(context + ": duplicate tile for axis \"" +
                                token.substr(0, eq) + "\"");
                }
                plan.tiles[static_cast<std::size_t>(axis)] =
                    parseInt64Strict(token.substr(eq + 1), context);
            }
            haveTiles = true;
        } else if (key == "volume-bytes") {
            plan.predictedVolumeBytes = parseDoubleStrict(value, context);
        } else if (key == "mem-bytes") {
            plan.memUsageBytes = parseInt64Strict(value, context);
        } else {
            throw Error(context + ": unknown plan key \"" + key + "\"");
        }
    }
    CHIMERA_CHECK(haveOrder && haveTiles,
                  "plan document missing order or tiles");
    if (!expectedFingerprint.empty() &&
        fingerprint != expectedFingerprint) {
        throw Error("plan fingerprint mismatch: expected " +
                    expectedFingerprint + ", document carries " +
                    (fingerprint.empty() ? std::string("none")
                                         : fingerprint));
    }
    model::validatePermutation(chain, plan.perm);
    model::validateTiles(chain, plan.tiles);

    // Recompute the predictions so a stale document cannot lie.
    const model::DataMovement dm =
        model::computeDataMovement(chain, plan.perm, plan.tiles);
    plan.predictedVolumeBytes = dm.volumeBytes;
    plan.memUsageBytes = dm.memUsageBytes;
    return plan;
}

} // namespace chimera::plan
