#include "plan/plan_io.hpp"

#include <sstream>

#include "ir/builders.hpp"
#include "model/data_movement.hpp"
#include "support/error.hpp"

namespace chimera::plan {

std::string
serializePlan(const ir::Chain &chain, const ExecutionPlan &plan)
{
    model::validatePermutation(chain, plan.perm);
    model::validateTiles(chain, plan.tiles);
    std::ostringstream out;
    out << "chimera-plan v1\n";
    out << "chain: " << chain.name() << "\n";
    out << "order: " << orderString(chain, plan.perm) << "\n";
    out << "tiles:";
    for (int a = 0; a < chain.numAxes(); ++a) {
        out << " " << chain.axes()[static_cast<std::size_t>(a)].name << "="
            << plan.tiles[static_cast<std::size_t>(a)];
    }
    out << "\n";
    out << "volume-bytes: " << static_cast<std::int64_t>(
                                   plan.predictedVolumeBytes)
        << "\n";
    out << "mem-bytes: " << plan.memUsageBytes << "\n";
    return out.str();
}

ExecutionPlan
deserializePlan(const ir::Chain &chain, const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    CHIMERA_CHECK(std::getline(in, line) && line == "chimera-plan v1",
                  "not a chimera-plan v1 document");

    ExecutionPlan plan;
    plan.tiles.assign(static_cast<std::size_t>(chain.numAxes()), 0);
    bool haveOrder = false;
    bool haveTiles = false;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        const std::size_t colon = line.find(':');
        CHIMERA_CHECK(colon != std::string::npos,
                      "malformed plan line: " + line);
        const std::string key = line.substr(0, colon);
        std::string value = line.substr(colon + 1);
        if (!value.empty() && value.front() == ' ') {
            value.erase(0, 1);
        }
        if (key == "chain") {
            // Informational; the caller supplies the chain to bind to.
        } else if (key == "order") {
            plan.perm = permFromOrderString(chain, value);
            haveOrder = true;
        } else if (key == "tiles") {
            std::istringstream ts(value);
            std::string token;
            while (ts >> token) {
                const std::size_t eq = token.find('=');
                CHIMERA_CHECK(eq != std::string::npos,
                              "malformed tile token: " + token);
                const ir::AxisId axis =
                    ir::axisIdByName(chain, token.substr(0, eq));
                plan.tiles[static_cast<std::size_t>(axis)] =
                    std::stoll(token.substr(eq + 1));
            }
            haveTiles = true;
        } else if (key == "volume-bytes") {
            plan.predictedVolumeBytes = std::stod(value);
        } else if (key == "mem-bytes") {
            plan.memUsageBytes = std::stoll(value);
        } else {
            throw Error("unknown plan key: " + key);
        }
    }
    CHIMERA_CHECK(haveOrder && haveTiles,
                  "plan document missing order or tiles");
    model::validatePermutation(chain, plan.perm);
    model::validateTiles(chain, plan.tiles);

    // Recompute the predictions so a stale document cannot lie.
    const model::DataMovement dm =
        model::computeDataMovement(chain, plan.perm, plan.tiles);
    plan.predictedVolumeBytes = dm.volumeBytes;
    plan.memUsageBytes = dm.memUsageBytes;
    return plan;
}

} // namespace chimera::plan
