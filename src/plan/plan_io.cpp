#include "plan/plan_io.hpp"

#include <set>
#include <sstream>

#include "analysis/dependence.hpp"
#include "ir/builders.hpp"
#include "model/data_movement.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace chimera::plan {

namespace {

std::string
lineContext(int lineNumber, const std::string &line)
{
    return "plan document line " + std::to_string(lineNumber) + " (\"" +
           line + "\")";
}

} // namespace

std::string
serializePlan(const ir::Chain &chain, const ExecutionPlan &plan,
              const std::string &fingerprint)
{
    model::validatePermutation(chain, plan.perm);
    model::validateTiles(chain, plan.tiles);
    std::ostringstream out;
    out << "chimera-plan v2\n";
    if (!fingerprint.empty()) {
        out << "fingerprint: " << fingerprint << "\n";
    }
    out << "chain: " << chain.name() << "\n";
    out << "order: " << orderString(chain, plan.perm) << "\n";
    out << "tiles:";
    for (int a = 0; a < chain.numAxes(); ++a) {
        out << " " << chain.axes()[static_cast<std::size_t>(a)].name << "="
            << plan.tiles[static_cast<std::size_t>(a)];
    }
    out << "\n";
    if (static_cast<int>(plan.concurrency.size()) == chain.numAxes()) {
        out << "concurrency:";
        for (int a = 0; a < chain.numAxes(); ++a) {
            out << " " << chain.axes()[static_cast<std::size_t>(a)].name
                << "="
                << analysis::concurrencyName(
                       plan.concurrency[static_cast<std::size_t>(a)]);
        }
        out << "\n";
    }
    bool anyGrain = false;
    for (std::int64_t g : plan.parallelGrain) {
        anyGrain = anyGrain || g > 1;
    }
    // Serial plans omit both lines so pre-thread-aware documents stay
    // byte-identical (and cache entries written by them keep parsing).
    if (plan.plannedThreads > 1 || anyGrain) {
        out << "threads: " << std::max(1, plan.plannedThreads) << "\n";
    }
    if (anyGrain) {
        CHIMERA_CHECK(static_cast<int>(plan.parallelGrain.size()) ==
                          chain.numAxes(),
                      "plan grain arity does not match the chain");
        out << "grain:";
        for (int a = 0; a < chain.numAxes(); ++a) {
            if (plan.parallelGrain[static_cast<std::size_t>(a)] > 1) {
                out << " "
                    << chain.axes()[static_cast<std::size_t>(a)].name
                    << "="
                    << plan.parallelGrain[static_cast<std::size_t>(a)];
            }
        }
        out << "\n";
    }
    // Only certified plans carry the line: uncertified documents stay
    // byte-identical to the pre-safety format.
    if (plan.safety.certified) {
        out << "safety: domain=" << plan.safety.domain
            << " rules=" << plan.safety.rules
            << " digest=" << plan.safety.digest << "\n";
    }
    // Fixed-order and hand-assembled plans carried out no search, so
    // they stay byte-identical to the pre-search format.
    if (plan.search.present) {
        out << "search: mode=" << analysis::pruneModeName(plan.search.mode)
            << " enumerated=" << plan.search.enumerated
            << " truncated=" << (plan.search.truncated ? 1 : 0)
            << " filtered=" << plan.search.filtered
            << " symmetry=" << plan.search.symmetryPruned
            << " dominance=" << plan.search.dominancePruned
            << " beam=" << plan.search.beamPruned
            << " solved=" << plan.search.solved
            << " gap=" << plan.search.gapBoundBytes
            << " digest=" << plan.search.digest << "\n";
    }
    out << "volume-bytes: " << static_cast<std::int64_t>(
                                   plan.predictedVolumeBytes)
        << "\n";
    out << "mem-bytes: " << plan.memUsageBytes << "\n";
    return out.str();
}

ParsedPlanDoc
parsePlanDocument(const std::string &text)
{
    // Manual line iteration (no istringstream): this runs on the plan
    // cache's warm lookup path, where a fresh process pays ~100us for
    // its first stream construction alone.
    std::size_t cursor = 0;
    auto nextLine = [&text, &cursor](std::string &out) {
        if (cursor >= text.size()) {
            return false;
        }
        std::size_t nl = text.find('\n', cursor);
        if (nl == std::string::npos) {
            nl = text.size();
        }
        out = text.substr(cursor, nl - cursor);
        cursor = nl + 1;
        if (!out.empty() && out.back() == '\r') {
            out.pop_back();
        }
        return true;
    };

    std::string line;
    CHIMERA_CHECK(nextLine(line), "empty plan document");
    CHIMERA_CHECK(line == "chimera-plan v1" || line == "chimera-plan v2",
                  "plan document line 1: not a chimera-plan v1/v2 header"
                  " (\"" +
                      line + "\")");

    ParsedPlanDoc doc;
    doc.version = line.back() == '1' ? 1 : 2;
    std::set<std::string> seenKeys;
    int lineNumber = 1;
    while (nextLine(line)) {
        ++lineNumber;
        if (line.empty()) {
            continue;
        }
        const std::string context = lineContext(lineNumber, line);
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            throw Error(context + ": expected \"key: value\"");
        }
        const std::string key = line.substr(0, colon);
        std::string value = line.substr(colon + 1);
        if (!value.empty() && value.front() == ' ') {
            value.erase(0, 1);
        }
        if (!seenKeys.insert(key).second) {
            throw Error(context + ": duplicate key \"" + key + "\"");
        }
        if (key == "chain") {
            doc.chainName = value;
        } else if (key == "fingerprint") {
            doc.fingerprint = value;
        } else if (key == "order") {
            doc.order = value;
            doc.haveOrder = true;
        } else if (key == "tiles") {
            std::set<std::string> seenAxes;
            std::size_t tokenStart = 0;
            while (tokenStart < value.size()) {
                tokenStart = value.find_first_not_of(" \t", tokenStart);
                if (tokenStart == std::string::npos) {
                    break;
                }
                std::size_t tokenEnd =
                    value.find_first_of(" \t", tokenStart);
                if (tokenEnd == std::string::npos) {
                    tokenEnd = value.size();
                }
                const std::string token =
                    value.substr(tokenStart, tokenEnd - tokenStart);
                tokenStart = tokenEnd;
                const std::size_t eq = token.find('=');
                if (eq == std::string::npos) {
                    throw Error(context + ": malformed tile token \"" +
                                token + "\"");
                }
                const std::string axisName = token.substr(0, eq);
                if (!seenAxes.insert(axisName).second) {
                    throw Error(context + ": duplicate tile for axis \"" +
                                axisName + "\"");
                }
                doc.tiles.emplace_back(
                    axisName, parseInt64Strict(token.substr(eq + 1),
                                               context));
            }
            doc.haveTiles = true;
        } else if (key == "concurrency") {
            std::set<std::string> seenAxes;
            std::size_t tokenStart = 0;
            while (tokenStart < value.size()) {
                tokenStart = value.find_first_not_of(" \t", tokenStart);
                if (tokenStart == std::string::npos) {
                    break;
                }
                std::size_t tokenEnd =
                    value.find_first_of(" \t", tokenStart);
                if (tokenEnd == std::string::npos) {
                    tokenEnd = value.size();
                }
                const std::string token =
                    value.substr(tokenStart, tokenEnd - tokenStart);
                tokenStart = tokenEnd;
                const std::size_t eq = token.find('=');
                if (eq == std::string::npos || eq == 0 ||
                    eq + 1 >= token.size()) {
                    throw Error(context +
                                ": malformed concurrency token \"" +
                                token + "\"");
                }
                const std::string axisName = token.substr(0, eq);
                if (!seenAxes.insert(axisName).second) {
                    throw Error(context +
                                ": duplicate concurrency for axis \"" +
                                axisName + "\"");
                }
                doc.concurrency.emplace_back(axisName,
                                             token.substr(eq + 1));
            }
            doc.haveConcurrency = true;
        } else if (key == "threads") {
            doc.threads = parseInt64Strict(value, context);
            if (doc.threads < 1) {
                throw Error(context + ": threads must be >= 1, got " +
                            std::to_string(doc.threads));
            }
            doc.haveThreads = true;
        } else if (key == "grain") {
            std::set<std::string> seenAxes;
            std::size_t tokenStart = 0;
            while (tokenStart < value.size()) {
                tokenStart = value.find_first_not_of(" \t", tokenStart);
                if (tokenStart == std::string::npos) {
                    break;
                }
                std::size_t tokenEnd =
                    value.find_first_of(" \t", tokenStart);
                if (tokenEnd == std::string::npos) {
                    tokenEnd = value.size();
                }
                const std::string token =
                    value.substr(tokenStart, tokenEnd - tokenStart);
                tokenStart = tokenEnd;
                const std::size_t eq = token.find('=');
                if (eq == std::string::npos || eq == 0 ||
                    eq + 1 >= token.size()) {
                    throw Error(context + ": malformed grain token \"" +
                                token + "\"");
                }
                const std::string axisName = token.substr(0, eq);
                if (!seenAxes.insert(axisName).second) {
                    throw Error(context +
                                ": duplicate grain for axis \"" +
                                axisName + "\"");
                }
                const std::int64_t g =
                    parseInt64Strict(token.substr(eq + 1), context);
                if (g < 1) {
                    throw Error(context + ": grain for axis \"" +
                                axisName + "\" must be >= 1, got " +
                                std::to_string(g));
                }
                doc.grain.emplace_back(axisName, g);
            }
            doc.haveGrain = true;
        } else if (key == "safety") {
            std::set<std::string> seenFields;
            std::size_t tokenStart = 0;
            while (tokenStart < value.size()) {
                tokenStart = value.find_first_not_of(" \t", tokenStart);
                if (tokenStart == std::string::npos) {
                    break;
                }
                std::size_t tokenEnd =
                    value.find_first_of(" \t", tokenStart);
                if (tokenEnd == std::string::npos) {
                    tokenEnd = value.size();
                }
                const std::string token =
                    value.substr(tokenStart, tokenEnd - tokenStart);
                tokenStart = tokenEnd;
                const std::size_t eq = token.find('=');
                if (eq == std::string::npos || eq == 0 ||
                    eq + 1 >= token.size()) {
                    throw Error(context + ": malformed safety token \"" +
                                token + "\"");
                }
                const std::string field = token.substr(0, eq);
                if (!seenFields.insert(field).second) {
                    throw Error(context +
                                ": duplicate safety field \"" + field +
                                "\"");
                }
                doc.safety.emplace_back(field, token.substr(eq + 1));
            }
            doc.haveSafety = true;
        } else if (key == "search") {
            std::set<std::string> seenFields;
            std::size_t tokenStart = 0;
            while (tokenStart < value.size()) {
                tokenStart = value.find_first_not_of(" \t", tokenStart);
                if (tokenStart == std::string::npos) {
                    break;
                }
                std::size_t tokenEnd =
                    value.find_first_of(" \t", tokenStart);
                if (tokenEnd == std::string::npos) {
                    tokenEnd = value.size();
                }
                const std::string token =
                    value.substr(tokenStart, tokenEnd - tokenStart);
                tokenStart = tokenEnd;
                const std::size_t eq = token.find('=');
                if (eq == std::string::npos || eq == 0 ||
                    eq + 1 >= token.size()) {
                    throw Error(context + ": malformed search token \"" +
                                token + "\"");
                }
                const std::string field = token.substr(0, eq);
                if (!seenFields.insert(field).second) {
                    throw Error(context +
                                ": duplicate search field \"" + field +
                                "\"");
                }
                doc.search.emplace_back(field, token.substr(eq + 1));
            }
            doc.haveSearch = true;
        } else if (key == "volume-bytes") {
            doc.declaredVolumeBytes = parseDoubleStrict(value, context);
            doc.haveVolume = true;
        } else if (key == "mem-bytes") {
            doc.declaredMemBytes = parseInt64Strict(value, context);
            doc.haveMem = true;
        } else {
            throw Error(context + ": unknown plan key \"" + key + "\"");
        }
    }
    return doc;
}

std::vector<analysis::AxisConcurrency>
bindConcurrency(
    const ir::Chain &chain,
    const std::vector<std::pair<std::string, std::string>> &entries)
{
    std::vector<analysis::AxisConcurrency> kinds(
        static_cast<std::size_t>(chain.numAxes()),
        analysis::AxisConcurrency::Sequential);
    std::vector<bool> bound(static_cast<std::size_t>(chain.numAxes()),
                            false);
    for (const auto &[axisName, kindName] : entries) {
        ir::AxisId axis = -1;
        try {
            axis = ir::axisIdByName(chain, axisName);
        } catch (const Error &) {
            throw Error("plan concurrency declares axis \"" + axisName +
                        "\" which chain " + chain.name() +
                        " does not have");
        }
        const std::size_t slot = static_cast<std::size_t>(axis);
        if (bound[slot]) {
            throw Error("plan concurrency declares axis \"" + axisName +
                        "\" more than once");
        }
        bound[slot] = true;
        kinds[slot] = analysis::concurrencyFromName(
            kindName, "plan concurrency for axis \"" + axisName + "\"");
    }
    for (int a = 0; a < chain.numAxes(); ++a) {
        if (!bound[static_cast<std::size_t>(a)]) {
            throw Error(
                "plan concurrency is incomplete: axis \"" +
                chain.axes()[static_cast<std::size_t>(a)].name +
                "\" has no declared class");
        }
    }
    return kinds;
}

analysis::SafetyCertificate
bindSafety(const ir::Chain &chain,
           const std::vector<std::pair<std::string, std::string>> &entries)
{
    analysis::SafetyCertificate cert;
    bool haveDomain = false;
    bool haveRules = false;
    bool haveDigest = false;
    for (const auto &[field, value] : entries) {
        if (field == "domain") {
            cert.domain = value;
            haveDomain = true;
        } else if (field == "rules") {
            cert.rules = value;
            haveRules = true;
        } else if (field == "digest") {
            cert.digest = value;
            haveDigest = true;
        } else {
            throw Error("plan safety line has unknown field \"" + field +
                        "\"");
        }
    }
    if (!haveDomain || !haveRules || !haveDigest) {
        throw Error(
            "plan safety line must carry domain=, rules= and digest=");
    }
    // Validates the domain grammar and that it names only chain axes
    // (and admits each concrete extent); the result is discarded — the
    // certificate keeps the canonical string form.
    (void)analysis::parseShapeDomain(chain, cert.domain,
                                     "plan safety domain");
    std::size_t pos = 0;
    std::set<std::string> seenRules;
    while (pos <= cert.rules.size()) {
        const std::size_t comma = cert.rules.find(',', pos);
        const std::string rule = cert.rules.substr(
            pos,
            comma == std::string::npos ? std::string::npos : comma - pos);
        if (rule != "sb01" && rule != "sb02" && rule != "sb03" &&
            rule != "sb04") {
            throw Error("plan safety line claims unknown rule \"" + rule +
                        "\"");
        }
        if (!seenRules.insert(rule).second) {
            throw Error("plan safety line claims rule \"" + rule +
                        "\" more than once");
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    if (cert.digest.size() != 16 ||
        cert.digest.find_first_not_of("0123456789abcdef") !=
            std::string::npos) {
        throw Error("plan safety digest \"" + cert.digest +
                    "\" is not 16 lowercase hex digits");
    }
    cert.certified = true;
    return cert;
}

analysis::SearchStats
bindSearch(const std::vector<std::pair<std::string, std::string>> &entries)
{
    analysis::SearchStats stats;
    std::set<std::string> bound;
    const auto counter = [&](const std::string &field,
                             const std::string &value) {
        const std::int64_t n = parseInt64Strict(
            value, "plan search field \"" + field + "\"");
        if (n < 0) {
            throw Error("plan search field \"" + field +
                        "\" must be >= 0, got " + std::to_string(n));
        }
        return n;
    };
    for (const auto &[field, value] : entries) {
        if (!bound.insert(field).second) {
            throw Error("plan search line repeats field \"" + field +
                        "\"");
        }
        if (field == "mode") {
            const std::optional<analysis::PruneMode> mode =
                analysis::parsePruneMode(value);
            if (!mode) {
                throw Error("plan search line has unknown mode \"" +
                            value + "\"");
            }
            stats.mode = *mode;
        } else if (field == "enumerated") {
            stats.enumerated = counter(field, value);
        } else if (field == "truncated") {
            if (value != "0" && value != "1") {
                throw Error("plan search truncated must be 0 or 1, got \"" +
                            value + "\"");
            }
            stats.truncated = value == "1";
        } else if (field == "filtered") {
            stats.filtered = counter(field, value);
        } else if (field == "symmetry") {
            stats.symmetryPruned = counter(field, value);
        } else if (field == "dominance") {
            stats.dominancePruned = counter(field, value);
        } else if (field == "beam") {
            stats.beamPruned = counter(field, value);
        } else if (field == "solved") {
            stats.solved = counter(field, value);
        } else if (field == "gap") {
            stats.gapBoundBytes = counter(field, value);
        } else if (field == "digest") {
            stats.digest = value;
        } else {
            throw Error("plan search line has unknown field \"" + field +
                        "\"");
        }
    }
    for (const char *required :
         {"mode", "enumerated", "truncated", "filtered", "symmetry",
          "dominance", "beam", "solved", "gap", "digest"}) {
        if (bound.count(required) == 0) {
            throw Error(std::string("plan search line is missing ") +
                        required + "=");
        }
    }
    if (stats.digest.size() != 16 ||
        stats.digest.find_first_not_of("0123456789abcdef") !=
            std::string::npos) {
        throw Error("plan search digest \"" + stats.digest +
                    "\" is not 16 lowercase hex digits");
    }
    stats.present = true;
    return stats;
}

ExecutionPlan
deserializePlan(const ir::Chain &chain, const std::string &text,
                const std::string &expectedFingerprint)
{
    const ParsedPlanDoc doc = parsePlanDocument(text);
    CHIMERA_CHECK(doc.haveOrder && doc.haveTiles,
                  "plan document missing order or tiles");
    if (!expectedFingerprint.empty() &&
        doc.fingerprint != expectedFingerprint) {
        throw Error("plan fingerprint mismatch: expected " +
                    expectedFingerprint + ", document carries " +
                    (doc.fingerprint.empty() ? std::string("none")
                                             : doc.fingerprint));
    }

    ExecutionPlan plan;
    plan.perm = permFromOrderString(chain, doc.order);
    plan.tiles.assign(static_cast<std::size_t>(chain.numAxes()), 0);
    for (const auto &[axisName, tile] : doc.tiles) {
        plan.tiles[static_cast<std::size_t>(
            ir::axisIdByName(chain, axisName))] = tile;
    }
    model::validatePermutation(chain, plan.perm);
    model::validateTiles(chain, plan.tiles);
    plan.concurrency =
        doc.haveConcurrency
            ? bindConcurrency(chain, doc.concurrency)
            : analysis::analyzeConcurrency(chain, plan.tiles).kinds();

    // Thread-aware chunking lines: a grain only makes sense relative to
    // the worker count it was solved for.
    CHIMERA_CHECK(!doc.haveGrain || doc.haveThreads,
                  "plan document has a grain line without a threads line");
    plan.plannedThreads = static_cast<int>(doc.threads);
    if (doc.haveThreads) {
        plan.parallelGrain.assign(static_cast<std::size_t>(chain.numAxes()),
                                  1);
        for (const auto &[axisName, g] : doc.grain) {
            ir::AxisId axis = -1;
            try {
                axis = ir::axisIdByName(chain, axisName);
            } catch (const Error &) {
                throw Error("plan grain declares axis \"" + axisName +
                            "\" which chain " + chain.name() +
                            " does not have");
            }
            plan.parallelGrain[static_cast<std::size_t>(axis)] = g;
        }
    }

    if (doc.haveSafety) {
        plan.safety = bindSafety(chain, doc.safety);
    }
    if (doc.haveSearch) {
        plan.search = bindSearch(doc.search);
    }

    // Recompute the predictions so a stale document cannot lie.
    const model::DataMovement dm =
        model::computeDataMovement(chain, plan.perm, plan.tiles);
    plan.predictedVolumeBytes = dm.volumeBytes;
    plan.memUsageBytes = dm.memUsageBytes;
    return plan;
}

} // namespace chimera::plan
