#include "plan/plan_cache.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#ifdef __unix__
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/plan_io.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/str.hpp"
#include "support/timer.hpp"
#include "verify/plan_verifier.hpp"

namespace chimera::plan {

namespace {

namespace fs = std::filesystem;

/**
 * Canonical text for every plan-affecting planner option. Doubles are
 * printed as hexfloat so the key never depends on decimal rounding.
 * String appends, not ostringstream: warm lookup path.
 */
std::string
optionsSignature(const PlannerOptions &options)
{
    char cap[64];
    // %a of a double is at most ~30 chars; the buffer cannot truncate
    // (cert-err33-c).
    static_cast<void>(
        std::snprintf(cap, sizeof cap, "%a", options.memCapacityBytes));
    std::string out;
    out += std::string("cap=") + cap;
    out += ";maxperm=" + std::to_string(options.maxPermutations);
    out += ";sweeps=" + std::to_string(options.solverSweeps);
    out += ";execonly=";
    out += options.onlyExecutableOrders ? "1" : "0";
    out += ";interio=";
    out += options.model.intermediatesAreIO ? "1" : "0";
    // Thread-aware knobs: an 8-worker chunked plan must never be served
    // to a 1-thread run (and vice versa), and a different topology or
    // grain target changes the tiles. `threads` (the search loop) is
    // deliberately absent — it never changes the plan.
    out += ";xthreads=" + std::to_string(std::max(1, options.execThreads));
    if (options.execThreads > 1) {
        out += ";cpw=" + std::to_string(options.chunksPerWorker);
    }
    if (options.topology.hasTopology()) {
        out += ";topo=" + options.topology.name + ":" +
               std::to_string(options.topology.cores);
        for (const model::MemoryLevel &level : options.topology.levels) {
            char capBytes[64];
            static_cast<void>(std::snprintf(capBytes, sizeof capBytes,
                                            "%a", level.capacityBytes));
            out += ",";
            out += level.name;
            out += level.scope == model::LevelScope::Shared ? "/s:" : "/p:";
            out += capBytes;
        }
    }
    // Static-safety knobs, emitted only when non-default so every
    // fingerprint minted before the analyzer existed stays valid (old
    // entries deserialize as uncertified and are re-certified by the
    // consumers that require a certificate).
    if (!options.staticSafety) {
        out += ";sb=0";
    }
    if (!options.safetyDomain.empty()) {
        out += ";sbdom=";
        for (const auto &[axis, maxExtent] : options.safetyDomain) {
            out += axis + ":" + std::to_string(maxExtent) + ",";
        }
    }
    // Search pruning: the exact modes (none/symmetry/dominance) pick
    // the bitwise-identical plan as exhaustive enumeration, so they
    // deliberately share fingerprints (entries minted under any of
    // them — including every pre-pruning entry — stay interchangeable).
    // Beam is inexact: its plan depends on the beam width, so both
    // enter the key.
    if (options.prune == analysis::PruneMode::Beam) {
        out += ";prune=beam;bw=" +
               std::to_string(std::max(1, options.beamWidth));
    }
    auto emitMap =
        [&out](const char *name,
               const std::map<ir::AxisId, std::int64_t> &entries) {
            out += ";";
            out += name;
            out += "=";
            for (const auto &[axis, value] : entries) {
                out += std::to_string(axis) + ":" +
                       std::to_string(value) + ",";
            }
        };
    emitMap("mult", options.constraints.multipleOf);
    emitMap("fixed", options.constraints.fixed);
    emitMap("max", options.constraints.maxTile);
    emitMap("min", options.constraints.minTile);
    return out;
}

/**
 * Best-effort whole-file read; nullopt when unreadable/absent. C stdio,
 * not ifstream — the first stream construction in a fresh process costs
 * far more than reading a plan-sized file.
 */
std::optional<std::string>
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        return std::nullopt;
    }
    std::string contents;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
        contents.append(buffer, n);
    }
    const bool ok = std::ferror(file) == 0;
    // Read-only stream: ferror above already captured any IO defect, so
    // a close failure cannot change the outcome (cert-err33-c).
    static_cast<void>(std::fclose(file));
    if (!ok) {
        return std::nullopt;
    }
    return contents;
}

/**
 * Suffix every store() writer appends to the entry path before the
 * atomic rename. Also the marker the orphan sweep looks for: any
 * "<fp>.plan.tmp.<pid>.<seq>" left behind by a crashed writer.
 */
constexpr char kTempMarker[] = ".tmp.";

/** Unique-per-writer temp path: pid disambiguates processes, the
 * process-wide counter disambiguates threads within one process. Two
 * writers racing on the same fingerprint therefore never share a temp
 * file — each publishes its own complete document via rename. */
std::string
uniqueTempPath(const std::string &entryPath)
{
    static std::atomic<std::uint64_t> sequence{0};
#ifdef __unix__
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    return entryPath + kTempMarker + std::to_string(pid) + "." +
           std::to_string(sequence.fetch_add(1,
                                             std::memory_order_relaxed));
}

/**
 * Age before an orphaned temp file is considered abandoned. Live
 * writers hold a temp only for one serialize+rename, so anything this
 * old belongs to a crashed process; anything younger may still be
 * mid-write by a concurrent store and must be left alone.
 */
constexpr auto kOrphanTempAge = std::chrono::minutes(10);

/**
 * Process-wide mirrors of the per-instance PlanCacheStats counters, so
 * `chimera-serve --metrics-dump` (and any other obs::Registry reader)
 * sees cache behaviour without holding a PlanCache reference.
 */
struct CacheMetrics {
    obs::Counter &memoryHits =
        obs::Registry::global().counter("chimera.plan.cache.memory_hits");
    obs::Counter &diskHits =
        obs::Registry::global().counter("chimera.plan.cache.disk_hits");
    obs::Counter &misses =
        obs::Registry::global().counter("chimera.plan.cache.misses");
    obs::Counter &stores =
        obs::Registry::global().counter("chimera.plan.cache.stores");
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics metrics;
    return metrics;
}

} // namespace

std::string
planFingerprint(const ir::Chain &chain, const PlannerOptions &options)
{
    return fnv1a64Hex(ir::chainSignature(chain) + "|" +
                      optionsSignature(options));
}

PlanCache::PlanCache(std::string directory)
    : directory_(std::move(directory))
{
    removeOrphanedTempFiles();
}

void
PlanCache::removeOrphanedTempFiles()
{
    if (directory_.empty()) {
        return;
    }
    std::error_code ec;
    fs::directory_iterator it(directory_, ec);
    if (ec) {
        return; // absent/unreadable directory: nothing to sweep
    }
    const auto now = fs::file_time_type::clock::now();
    for (const fs::directory_entry &entry :
         fs::directory_iterator(directory_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find(kTempMarker) == std::string::npos) {
            continue;
        }
        std::error_code entryEc;
        const fs::file_time_type written =
            fs::last_write_time(entry.path(), entryEc);
        if (entryEc || now - written < kOrphanTempAge) {
            continue;
        }
        if (fs::remove(entry.path(), entryEc); !entryEc) {
            CHIMERA_INFO("plan cache removed orphaned temp file "
                         << entry.path().string());
        }
    }
}

std::string
PlanCache::defaultDirectory()
{
    if (const char *env = std::getenv("CHIMERA_PLAN_CACHE")) {
        return env; // empty value = explicitly memory-only
    }
    if (const char *home = std::getenv("HOME");
        home != nullptr && *home != '\0') {
        return std::string(home) + "/.cache/chimera";
    }
    return "";
}

PlanCache &
PlanCache::global()
{
    static PlanCache cache(defaultDirectory());
    return cache;
}

std::string
PlanCache::entryPath(const std::string &fingerprint) const
{
    return directory_ + "/" + fingerprint + ".plan";
}

std::optional<ExecutionPlan>
PlanCache::lookup(const ir::Chain &chain, const PlannerOptions &options)
{
    const WallTimer timer;
    const std::string fingerprint = planFingerprint(chain, options);
    obs::Span span(obs::trace(), "plan.cache.lookup", "plan");
    span.arg("fingerprint", fingerprint);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = memory_.find(fingerprint);
        if (it != memory_.end()) {
            memoryHits_.fetch_add(1, std::memory_order_relaxed);
            cacheMetrics().memoryHits.add();
            span.arg("outcome", std::string("memory-hit"));
            ExecutionPlan plan = it->second;
            plan.candidatesExamined = 0;
            plan.planSeconds = timer.seconds();
            return plan;
        }
    }
    if (!directory_.empty()) {
        if (const std::optional<std::string> text =
                readFile(entryPath(fingerprint))) {
            try {
                ExecutionPlan plan =
                    deserializePlan(chain, *text, fingerprint);
                // The document parsed and binds to the chain, but its
                // schedule may still be illegal under the *current*
                // options (e.g. a tampered entry whose footprint blows
                // the capacity, or a non-executable order written when
                // the filter was off). Audit before serving; predictions
                // were just recomputed, so the recount adds nothing.
                verify::PlanVerifyOptions vo =
                    verify::planVerifyOptions(options);
                vo.recount = false;
                const verify::Report audit =
                    verify::verifyExecutionPlan(chain, plan, vo);
                if (audit.hasErrors()) {
                    CHIMERA_INFO("rejecting illegal plan cache entry "
                                 << entryPath(fingerprint) << ":\n"
                                 << audit.render());
                    rejectedPlans_.fetch_add(1,
                                             std::memory_order_relaxed);
                    misses_.fetch_add(1, std::memory_order_relaxed);
                    cacheMetrics().misses.add();
                    span.arg("outcome", std::string("rejected"));
                    return std::nullopt;
                }
                diskHits_.fetch_add(1, std::memory_order_relaxed);
                cacheMetrics().diskHits.add();
                span.arg("outcome", std::string("disk-hit"));
                std::lock_guard<std::mutex> lock(mutex_);
                memory_[fingerprint] = plan;
                plan.candidatesExamined = 0;
                plan.planSeconds = timer.seconds();
                return plan;
            } catch (const Error &e) {
                // Stale/corrupt entry: replan silently; the store after
                // planning overwrites it with a valid document.
                CHIMERA_INFO("ignoring bad plan cache entry "
                             << entryPath(fingerprint) << ": "
                             << e.what());
                corruptEntries_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    cacheMetrics().misses.add();
    span.arg("outcome", std::string("miss"));
    return std::nullopt;
}

void
PlanCache::store(const ir::Chain &chain, const PlannerOptions &options,
                 const ExecutionPlan &plan)
{
    const std::string fingerprint = planFingerprint(chain, options);
    obs::Span span(obs::trace(), "plan.cache.store", "plan");
    span.arg("fingerprint", fingerprint);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        memory_[fingerprint] = plan;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    cacheMetrics().stores.add();
    if (directory_.empty() ||
        diskDisabled_.load(std::memory_order_relaxed)) {
        return;
    }
    std::error_code ec;
    fs::create_directories(directory_, ec);
    if (ec) {
        disableDisk("cannot create " + directory_ + " (" + ec.message() +
                    ")");
        return;
    }
    // Write-then-rename keeps concurrent readers off half-written
    // files; the unique temp name keeps concurrent *writers* of the
    // same fingerprint off each other's half-written temp (a fixed
    // suffix let a second writer O_TRUNC a temp the first was about to
    // rename, publishing a torn document).
    const std::string path = entryPath(fingerprint);
    const std::string tmp = uniqueTempPath(path);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            disableDisk("cannot write " + tmp);
            return;
        }
        out << serializePlan(chain, plan, fingerprint);
        if (!out.flush()) {
            disableDisk("write failed for " + tmp);
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        // Rename within one directory should never fail on a writable
        // filesystem; treat it like any other disk defect.
        disableDisk("cannot rename " + tmp + " to " + path + " (" +
                    ec.message() + ")");
        fs::remove(tmp, ec);
    }
}

void
PlanCache::disableDisk(const std::string &reason)
{
    if (!diskDisabled_.exchange(true, std::memory_order_relaxed)) {
        CHIMERA_WARN("plan cache degraded to memory-only: "
                     << reason << " (further stores stay in memory)");
    }
}

PlanCacheStats
PlanCache::stats() const
{
    PlanCacheStats out;
    out.memoryHits = memoryHits_.load(std::memory_order_relaxed);
    out.diskHits = diskHits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.stores = stores_.load(std::memory_order_relaxed);
    out.corruptEntries = corruptEntries_.load(std::memory_order_relaxed);
    out.rejectedPlans = rejectedPlans_.load(std::memory_order_relaxed);
    out.diskDisabled = diskDisabled_.load(std::memory_order_relaxed);
    return out;
}

} // namespace chimera::plan
