#pragma once

/**
 * @file
 * Plan serialization: a stable, human-readable text format so planned
 * schedules can be cached across runs (planning is cheap but kernels
 * may be planned once and deployed many times) and inspected in code
 * review. Current format:
 *
 *     chimera-plan v2
 *     fingerprint: 1f0c64d2a9b3e781
 *     chain: <name>
 *     order: m,l,k,n
 *     tiles: m=128 l=64 k=64 n=64
 *     volume-bytes: 6291456
 *     mem-bytes: 393216
 *
 * The fingerprint line is optional in hand-written documents and
 * mandatory for plan-cache entries: it hashes the chain structure plus
 * the planner options that produced the plan (see plan_cache.hpp), so a
 * cache entry can never be applied to the wrong key. v1 documents (no
 * fingerprint, same remaining keys) are still read.
 *
 * Deserialization is strict: every numeric field must parse as a full
 * token (trailing garbage such as "m=64abc" is rejected, not truncated),
 * duplicate keys and duplicate tile axes are rejected, and every failure
 * is reported as chimera::Error naming the offending line — malformed
 * input never escapes as a raw std:: exception. The parsed plan is then
 * validated against the chain it is applied to (axis names, tile ranges,
 * permutation completeness) and its predictions are recomputed, so a
 * stale or tampered document cannot lie.
 */

#include <string>

#include "plan/planner.hpp"

namespace chimera::plan {

/**
 * Serializes @p plan for @p chain into the v2 text format. A non-empty
 * @p fingerprint is embedded as the "fingerprint:" line (the plan cache
 * passes its lookup key; ad-hoc serialization may leave it out).
 */
std::string serializePlan(const ir::Chain &chain, const ExecutionPlan &plan,
                          const std::string &fingerprint = "");

/**
 * Parses a v1 or v2 plan document and validates it against @p chain.
 *
 * When @p expectedFingerprint is non-empty the document must carry a
 * matching "fingerprint:" line; a missing or different value throws
 * (the plan cache turns that into a silent replan).
 *
 * Throws chimera::Error — with the offending line quoted — on malformed
 * input, and on chain mismatch after parsing.
 */
ExecutionPlan deserializePlan(const ir::Chain &chain,
                              const std::string &text,
                              const std::string &expectedFingerprint = "");

} // namespace chimera::plan
