#pragma once

/**
 * @file
 * Plan serialization: a stable, human-readable text format so planned
 * schedules can be cached across runs (planning is cheap but kernels
 * may be planned once and deployed many times) and inspected in code
 * review. Format:
 *
 *     chimera-plan v1
 *     chain: <name>
 *     order: m,l,k,n
 *     tiles: m=128 l=64 k=64 n=64
 *     volume-bytes: 6291456
 *     mem-bytes: 393216
 *
 * Deserialization validates the plan against the chain it is applied
 * to (axis names, tile ranges, permutation completeness).
 */

#include <string>

#include "plan/planner.hpp"

namespace chimera::plan {

/** Serializes @p plan for @p chain into the v1 text format. */
std::string serializePlan(const ir::Chain &chain,
                          const ExecutionPlan &plan);

/**
 * Parses a v1 plan and validates it against @p chain.
 * Throws Error on malformed input or chain mismatch.
 */
ExecutionPlan deserializePlan(const ir::Chain &chain,
                              const std::string &text);

} // namespace chimera::plan
