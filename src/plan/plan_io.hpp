#pragma once

/**
 * @file
 * Plan serialization: a stable, human-readable text format so planned
 * schedules can be cached across runs (planning is cheap but kernels
 * may be planned once and deployed many times) and inspected in code
 * review. Current format:
 *
 *     chimera-plan v2
 *     fingerprint: 1f0c64d2a9b3e781
 *     chain: <name>
 *     order: m,l,k,n
 *     tiles: m=128 l=64 k=64 n=64
 *     concurrency: m=parallel l=reduction k=reduction n=parallel
 *     threads: 8
 *     grain: m=2
 *     safety: domain=concrete rules=sb01,sb02,sb03,sb04 digest=9ab1..
 *     search: mode=dominance enumerated=24 truncated=0 filtered=10
 *             symmetry=8 dominance=2 beam=0 solved=4 gap=0 digest=77c2..
 *     volume-bytes: 6291456
 *     mem-bytes: 393216
 *
 * The threads/grain lines carry the thread-aware chunking: the worker
 * count the plan was solved for and the blocks-per-dispatch-chunk grain
 * of each parallel region axis (axes omitted from "grain:" default to
 * 1). Both are omitted for serial plans (threads == 1, all-1 grain), so
 * pre-thread-aware documents remain byte-identical. "threads:" must be
 * >= 1 and grain values must be >= 1 on axes the chain has; a "grain:"
 * line without "threads:" is rejected.
 *
 * The concurrency line declares the per-axis concurrency class the
 * executors obey (see analysis/dependence.hpp). It is optional — a
 * document without one gets a fresh dependence analysis on load — but
 * when present it must cover every chain axis exactly once with a
 * known kind, and axes the chain does not have are rejected outright.
 * Whether the declared classes *agree* with a fresh analysis is the
 * verifier's job (DP rules), not the deserializer's: chimera-check
 * needs mis-declared documents to load so its dynamic race checker can
 * demonstrate the conflict.
 *
 * The safety line carries the static-safety certificate (SB01-SB04,
 * see analysis/static_safety.hpp): the shape domain the plan was
 * certified for, the proven rule set, and a digest binding the
 * certificate to the chain signature and the full schedule. It is
 * emitted only for certified plans (uncertified documents stay
 * byte-identical to the pre-safety format) and policed on load:
 * malformed lines are rejected by the deserializer, while rule PL14
 * re-derives the digest and re-runs the analyzer so a certificate can
 * neither be forged nor replayed onto a different schedule.
 *
 * The search line (one physical line; wrapped above for width)
 * discloses where the planner's candidate orders went (enumerated /
 * filtered / symmetry-pruned / dominance-pruned / beam-pruned /
 * solved), whether maxPermutations truncated the enumeration, the
 * pruning mode, beam mode's certified optimality-gap bound, and a
 * digest binding all of it to the chain and schedule (see
 * analysis/order_equivalence.hpp). It is emitted only for planned
 * plans (fixed-order and hand-assembled plans have no search) and
 * policed on load: malformed lines are rejected by the deserializer,
 * while rule PL15 checks the counts' consistency and re-derives the
 * digest so the claims can neither be forged nor replayed.
 *
 * The fingerprint line is optional in hand-written documents and
 * mandatory for plan-cache entries: it hashes the chain structure plus
 * the planner options that produced the plan (see plan_cache.hpp), so a
 * cache entry can never be applied to the wrong key. v1 documents (no
 * fingerprint, same remaining keys) are still read.
 *
 * Deserialization is strict: every numeric field must parse as a full
 * token (trailing garbage such as "m=64abc" is rejected, not truncated),
 * duplicate keys and duplicate tile axes are rejected, and every failure
 * is reported as chimera::Error naming the offending line — malformed
 * input never escapes as a raw std:: exception. The parsed plan is then
 * validated against the chain it is applied to (axis names, tile ranges,
 * permutation completeness) and its predictions are recomputed, so a
 * stale or tampered document cannot lie.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "plan/planner.hpp"

namespace chimera::plan {

/**
 * Raw fields of a plan document after the syntax pass, before binding
 * to a chain. parsePlanDocument fills this; deserializePlan binds it
 * (axis lookup, permutation/tile validation, prediction recompute) and
 * verify::verifyPlanDocument audits it without throwing so chimera-check
 * can report every defect of an adversarial document.
 */
struct ParsedPlanDoc
{
    /** Format version from the header line (1 or 2). */
    int version = 0;

    /** Value of the "fingerprint:" line; empty when absent. */
    std::string fingerprint;

    /** Value of the "chain:" line (informational). */
    std::string chainName;

    /** Raw "order:" value, e.g. "m,l,k,n". */
    std::string order;

    /** (axis name, tile size) pairs from the "tiles:" line, in order. */
    std::vector<std::pair<std::string, std::int64_t>> tiles;

    /**
     * (axis name, kind name) pairs from the "concurrency:" line, in
     * order. Kind names are validated at binding time (PL12/DP01), not
     * here, so the verifier can report instead of throwing.
     */
    std::vector<std::pair<std::string, std::string>> concurrency;

    /** Value of the "threads:" line (>= 1 enforced at parse time). */
    std::int64_t threads = 1;

    /** (axis name, grain) pairs from the "grain:" line, in order. */
    std::vector<std::pair<std::string, std::int64_t>> grain;

    /**
     * (key, value) pairs from the "safety:" line, in order (expected
     * keys: domain, rules, digest). Token grammar is enforced at parse
     * time; semantic binding (exactly those keys, valid domain/rule
     * ids, digest shape) is bindSafety's job so the verifier can
     * report PL14 instead of throwing.
     */
    std::vector<std::pair<std::string, std::string>> safety;

    /**
     * (key, value) pairs from the "search:" line, in order (expected
     * keys: mode, enumerated, truncated, filtered, symmetry, dominance,
     * beam, solved, gap, digest). Token grammar is enforced at parse
     * time; semantic binding is bindSearch's job so the verifier can
     * report PL15 instead of throwing.
     */
    std::vector<std::pair<std::string, std::string>> search;

    double declaredVolumeBytes = 0.0;
    std::int64_t declaredMemBytes = 0;

    bool haveOrder = false;
    bool haveTiles = false;
    bool haveConcurrency = false;
    bool haveThreads = false;
    bool haveGrain = false;
    bool haveSafety = false;
    bool haveSearch = false;
    bool haveVolume = false;
    bool haveMem = false;
};

/**
 * Syntax pass: parses a v1/v2 document into its raw fields without any
 * chain in hand. Throws chimera::Error — naming the offending line — on
 * malformed input (bad header, keyless lines, duplicate keys or tile
 * axes, non-numeric values); axis names and value ranges are *not*
 * checked here, that is the binding/verification layer's job.
 */
ParsedPlanDoc parsePlanDocument(const std::string &text);

/**
 * Binds a parsed "concurrency:" declaration to @p chain: resolves axis
 * names, parses kind tokens, and rejects unknown axes, unknown kinds,
 * duplicates, and incomplete coverage (every chain axis must appear
 * exactly once). Throws chimera::Error naming the defect; the verifier
 * catches it and reports rule PL12 instead. Returns the per-AxisId
 * kinds.
 */
std::vector<analysis::AxisConcurrency> bindConcurrency(
    const ir::Chain &chain,
    const std::vector<std::pair<std::string, std::string>> &entries);

/**
 * Binds a parsed "safety:" declaration to @p chain: requires exactly
 * the domain/rules/digest keys (each once), a well-formed shape domain
 * naming only chain axes, known lower-case sb rule ids, and a 16-hex
 * digest. Throws chimera::Error naming the defect; deserializePlan
 * lets it propagate (cache entries replan) and the verifier reports
 * rule PL14 instead. Returns the certificate with certified = true;
 * whether the digest *value* matches the bound schedule needs the
 * chain + schedule in hand and is the PL14 validator's job.
 */
analysis::SafetyCertificate bindSafety(
    const ir::Chain &chain,
    const std::vector<std::pair<std::string, std::string>> &entries);

/**
 * Binds a parsed "search:" declaration: requires exactly the
 * mode/enumerated/truncated/filtered/symmetry/dominance/beam/solved/
 * gap/digest keys (each once), a known mode name, truncated in {0, 1},
 * non-negative counts, and a 16-hex digest. Throws chimera::Error
 * naming the defect; deserializePlan lets it propagate (cache entries
 * replan) and the verifier reports rule PL15 instead. Whether the
 * counts are *consistent* and the digest matches the bound schedule is
 * verify::verifySearchStats's job.
 */
analysis::SearchStats bindSearch(
    const std::vector<std::pair<std::string, std::string>> &entries);

/**
 * Serializes @p plan for @p chain into the v2 text format. A non-empty
 * @p fingerprint is embedded as the "fingerprint:" line (the plan cache
 * passes its lookup key; ad-hoc serialization may leave it out).
 */
std::string serializePlan(const ir::Chain &chain, const ExecutionPlan &plan,
                          const std::string &fingerprint = "");

/**
 * Parses a v1 or v2 plan document and validates it against @p chain.
 *
 * When @p expectedFingerprint is non-empty the document must carry a
 * matching "fingerprint:" line; a missing or different value throws
 * (the plan cache turns that into a silent replan).
 *
 * Throws chimera::Error — with the offending line quoted — on malformed
 * input, and on chain mismatch after parsing.
 */
ExecutionPlan deserializePlan(const ir::Chain &chain,
                              const std::string &text,
                              const std::string &expectedFingerprint = "");

} // namespace chimera::plan
