#pragma once

/**
 * @file
 * Persistent plan cache: pays the analytical planning cost once.
 *
 * Planning a chain enumerates up to I! block orders and runs the tile
 * solver on each — cheap next to profiling-driven tuning, but pure waste
 * when a service replans the same chain on every request. The cache
 * memoizes finished plans at two levels:
 *
 *  - an in-memory memo for repeated plans within one process, and
 *  - an on-disk store (one v2 plan document per entry) so the cost
 *    survives restarts. The directory defaults to ~/.cache/chimera and
 *    is overridable via the CHIMERA_PLAN_CACHE environment variable; an
 *    empty directory string keeps the cache memory-only.
 *
 * Entries are keyed by a fingerprint hashing the chain signature
 * (ir::chainSignature: axes/extents/tensors/ops/epilogue) together with
 * every planner option that can change the winning plan (capacity,
 * model options, tile constraints, permutation cap, solver sweeps,
 * executable-order filter). PlannerOptions::threads is deliberately
 * excluded: the planner's argmin is deterministic at any thread count.
 *
 * Cache entries are never trusted: a loaded document goes through the
 * strict deserializer, is validated against the chain, must carry the
 * matching fingerprint, and has its predictions recomputed from the
 * model. The deserialized plan is then audited with the plan verifier
 * (executability of the order, re-derived memory usage against the
 * capacity) — a syntactically perfect document whose schedule is illegal
 * under the *current* options is rejected, not served. Any failure
 * counts as a miss and the chain is silently replanned (the fresh plan
 * then overwrites the bad entry). Disk I/O failures degrade to
 * memory-only operation, never to an error.
 */

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "plan/planner.hpp"

namespace chimera::plan {

/** Counters exposed for tests, benches and cache-troubleshooting. */
struct PlanCacheStats
{
    int memoryHits = 0; ///< served from the in-process memo
    int diskHits = 0; ///< deserialized from a plan file
    int misses = 0; ///< no (valid) entry; caller plans from scratch
    int stores = 0; ///< plans recorded after a miss
    int corruptEntries = 0; ///< unreadable/mismatched files ignored
    int rejectedPlans = 0; ///< parsed fine but failed plan verification

    /**
     * True once a store hit an unwritable/defective directory: the
     * cache warned once, dropped the disk tier, and keeps serving the
     * in-memory memo (lookups still read existing entries).
     */
    bool diskDisabled = false;

    int hits() const { return memoryHits + diskHits; }
};

/**
 * Cache key for (@p chain, @p options): 16 hex chars. Stable across
 * processes and thread counts; any change to the chain structure or to
 * a plan-affecting option yields a different key.
 */
std::string planFingerprint(const ir::Chain &chain,
                            const PlannerOptions &options);

/** Two-level (memory + directory-of-plan-files) plan cache. */
class PlanCache
{
  public:
    /**
     * Creates a cache rooted at @p directory. An empty string disables
     * the disk tier (in-memory memo only). The directory is created
     * lazily on the first store. Opening an existing directory sweeps
     * temp files abandoned by crashed writers (unique
     * "<fp>.plan.tmp.<pid>.<seq>" names older than a grace period);
     * fresh temps a concurrent store may still be writing are kept.
     */
    explicit PlanCache(std::string directory);

    /**
     * Resolution order for the default disk location: a non-empty
     * CHIMERA_PLAN_CACHE, else $HOME/.cache/chimera, else "" (memory
     * only). CHIMERA_PLAN_CACHE set but empty also means memory only.
     */
    static std::string defaultDirectory();

    /** Process-wide cache rooted at defaultDirectory(). */
    static PlanCache &global();

    const std::string &directory() const { return directory_; }

    /**
     * Returns the cached plan for (@p chain, @p options) or nullopt.
     * A hit reports candidatesExamined = 0 and planSeconds = the lookup
     * time, so callers can tell warm plans from cold ones.
     */
    std::optional<ExecutionPlan> lookup(const ir::Chain &chain,
                                        const PlannerOptions &options);

    /** Records a freshly planned schedule in both tiers. */
    void store(const ir::Chain &chain, const PlannerOptions &options,
               const ExecutionPlan &plan);

    /**
     * Snapshot of the counters. Each counter is an independent atomic
     * (incremented lock-free on the hot lookup path), so a snapshot
     * taken while other threads are mid-lookup may be transiently
     * inconsistent across counters — fine for tests and telemetry, the
     * only consumers.
     */
    PlanCacheStats stats() const;

  private:
    std::string entryPath(const std::string &fingerprint) const;

    /** Best-effort sweep of abandoned writer temp files (see ctor). */
    void removeOrphanedTempFiles();

    /** Drops the disk tier after a write defect; warns exactly once. */
    void disableDisk(const std::string &reason);

    const std::string directory_;
    mutable std::mutex mutex_;
    std::map<std::string, ExecutionPlan> memory_;
    std::atomic<int> memoryHits_{0};
    std::atomic<int> diskHits_{0};
    std::atomic<int> misses_{0};
    std::atomic<int> stores_{0};
    std::atomic<int> corruptEntries_{0};
    std::atomic<int> rejectedPlans_{0};
    std::atomic<bool> diskDisabled_{false};
};

} // namespace chimera::plan
