#include "analysis/static_safety.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "support/str.hpp"
#include "support/timer.hpp"

namespace chimera::analysis {

using ir::AxisId;
using ir::Chain;

namespace {

constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();

/** Clamps a 128-bit value into int64, recording saturation in @p ovf. */
std::int64_t
clamp128(__int128 v, bool &ovf)
{
    if (v > static_cast<__int128>(kInt64Max)) {
        ovf = true;
        return kInt64Max;
    }
    if (v < static_cast<__int128>(kInt64Min)) {
        ovf = true;
        return kInt64Min;
    }
    return static_cast<std::int64_t>(v);
}

std::int64_t
checkedAdd(std::int64_t a, std::int64_t b, bool &ovf)
{
    return clamp128(static_cast<__int128>(a) + static_cast<__int128>(b), ovf);
}

std::int64_t
checkedMul(std::int64_t a, std::int64_t b, bool &ovf)
{
    return clamp128(static_cast<__int128>(a) * static_cast<__int128>(b), ovf);
}

std::string
axisName(const Chain &chain, AxisId a)
{
    return chain.axes()[static_cast<std::size_t>(a)].name;
}

/** Joins int64 values with commas ("16,8,1"). */
std::string
joinInts(const std::vector<std::int64_t> &values)
{
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) {
            out += ",";
        }
        out += std::to_string(values[i]);
    }
    return out;
}

} // namespace

SymRange
addRanges(const SymRange &a, const SymRange &b)
{
    SymRange out;
    out.overflow = a.overflow || b.overflow;
    out.lo = checkedAdd(a.lo, b.lo, out.overflow);
    out.hi = checkedAdd(a.hi, b.hi, out.overflow);
    return out;
}

SymRange
mulRanges(const SymRange &a, const SymRange &b)
{
    SymRange out;
    out.overflow = a.overflow || b.overflow;
    const __int128 products[4] = {
        static_cast<__int128>(a.lo) * static_cast<__int128>(b.lo),
        static_cast<__int128>(a.lo) * static_cast<__int128>(b.hi),
        static_cast<__int128>(a.hi) * static_cast<__int128>(b.lo),
        static_cast<__int128>(a.hi) * static_cast<__int128>(b.hi),
    };
    __int128 lo = products[0];
    __int128 hi = products[0];
    for (int i = 1; i < 4; ++i) {
        lo = std::min(lo, products[i]);
        hi = std::max(hi, products[i]);
    }
    out.lo = clamp128(lo, out.overflow);
    out.hi = clamp128(hi, out.overflow);
    return out;
}

ShapeDomain
ShapeDomain::concrete(const Chain &chain)
{
    ShapeDomain d;
    d.lo = chain.fullExtents();
    d.hi = d.lo;
    return d;
}

void
ShapeDomain::widen(const Chain &chain, const std::string &axisName,
                   std::int64_t maxExtent)
{
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        const ir::Axis &axis = chain.axes()[static_cast<std::size_t>(a)];
        if (axis.name != axisName) {
            continue;
        }
        CHIMERA_CHECK(maxExtent >= axis.extent,
                      "shape domain for axis \"" + axisName +
                          "\" must admit the chain's concrete extent " +
                          std::to_string(axis.extent) + " (got max " +
                          std::to_string(maxExtent) + ")");
        lo[static_cast<std::size_t>(a)] = 1;
        hi[static_cast<std::size_t>(a)] = maxExtent;
        return;
    }
    throw Error("shape domain names unknown axis \"" + axisName + "\"");
}

bool
ShapeDomain::isConcrete(const Chain &chain) const
{
    const std::vector<std::int64_t> extents = chain.fullExtents();
    return lo == extents && hi == extents;
}

std::string
ShapeDomain::summary(const Chain &chain) const
{
    std::string out;
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        const std::size_t i = static_cast<std::size_t>(a);
        const std::int64_t extent = chain.axes()[i].extent;
        if (lo[i] == extent && hi[i] == extent) {
            continue;
        }
        if (!out.empty()) {
            out += ",";
        }
        out += chain.axes()[i].name + ":" + std::to_string(lo[i]) + ".." +
               std::to_string(hi[i]);
    }
    return out.empty() ? "concrete" : out;
}

ShapeDomain
parseShapeDomain(const Chain &chain, const std::string &spec,
                 const std::string &context)
{
    ShapeDomain domain = ShapeDomain::concrete(chain);
    if (spec == "concrete") {
        return domain;
    }
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string entry =
            spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        const std::size_t colon = entry.find(':');
        const std::size_t dots = entry.find("..");
        if (entry.empty() || colon == std::string::npos ||
            dots == std::string::npos || dots < colon) {
            throw Error(context + ": malformed shape-domain entry \"" +
                        entry + "\" (expected axis:lo..hi)");
        }
        const std::string name = entry.substr(0, colon);
        const std::int64_t lo = parseInt64Strict(
            entry.substr(colon + 1, dots - colon - 1), context + " domain lo");
        const std::int64_t hi =
            parseInt64Strict(entry.substr(dots + 2), context + " domain hi");
        AxisId axis = -1;
        for (AxisId a = 0; a < chain.numAxes(); ++a) {
            if (chain.axes()[static_cast<std::size_t>(a)].name == name) {
                axis = a;
                break;
            }
        }
        if (axis < 0) {
            throw Error(context + ": shape domain names unknown axis \"" +
                        name + "\"");
        }
        const std::size_t i = static_cast<std::size_t>(axis);
        const std::int64_t extent = chain.axes()[i].extent;
        if (lo < 1 || hi < lo || extent < lo || extent > hi) {
            throw Error(context + ": shape-domain range " + name + ":" +
                        std::to_string(lo) + ".." + std::to_string(hi) +
                        " must satisfy 1 <= lo <= extent " +
                        std::to_string(extent) + " <= hi");
        }
        domain.lo[i] = lo;
        domain.hi[i] = hi;
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return domain;
}

const char *
safetyRuleName(SafetyRule rule)
{
    switch (rule) {
      case SafetyRule::SB01: return "SB01";
      case SafetyRule::SB02: return "SB02";
      case SafetyRule::SB03: return "SB03";
      case SafetyRule::SB04: return "SB04";
    }
    return "?";
}

std::string
SafetyAnalysis::renderViolations() const
{
    std::string out;
    for (const SafetyViolation &v : violations) {
        if (!out.empty()) {
            out += "; ";
        }
        out += std::string(safetyRuleName(v.rule)) + " " + v.location + ": " +
               v.message;
    }
    return out;
}

std::string
safetyDigest(const Chain &chain, const std::vector<AxisId> &perm,
             const std::vector<std::int64_t> &tiles, int workers,
             const std::vector<std::int64_t> &grain,
             const std::string &domain, const std::string &rules)
{
    std::string blob = ir::chainSignature(chain);
    blob += "|order=";
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (i != 0) {
            blob += ",";
        }
        blob += std::to_string(perm[i]);
    }
    blob += "|tiles=" + joinInts(tiles);
    blob += "|threads=" + std::to_string(workers);
    blob += "|grain=" + joinInts(grain);
    blob += "|domain=" + domain;
    blob += "|rules=" + rules;
    return fnv1a64Hex(blob);
}

namespace {

/** Shared state threaded through the per-rule passes. */
struct Pass
{
    const Chain &chain;
    const std::vector<std::int64_t> &tiles;
    const std::vector<AxisConcurrency> &kinds;
    const ShapeDomain &domain;
    int workers;
    std::vector<std::int64_t> grain; // always numAxes entries, >= 1
    std::vector<SafetyViolation> &violations;

    void add(SafetyRule rule, std::string location, std::string message)
    {
        violations.push_back(
            {rule, std::move(location), std::move(message)});
    }
};

/**
 * SB01: containment of every block window. The executors clamp block
 * windows at the tensor edge, so for an access dimension with terms
 * coeff_t * i_t the maximal accessed index under clamping is exactly
 * sum_t coeff_t * (L_t - 1) — the dimension extent minus one — for
 * every shape, *provided* each tile satisfies 1 <= T_t <= L_t. The
 * symbolic difference (accessed max) - (extent - 1) cancels term by
 * term to 0, shape-independently. A tile above the domain's smallest
 * admissible extent breaks the cancellation with a concrete witness
 * (L_t = lo_t), so containment fails for that shape; a tile below 1
 * makes the window degenerate.
 */
void
checkBounds(Pass &p)
{
    std::vector<bool> tileReported(p.tiles.size(), false);
    for (const ir::TensorDecl &tensor : p.chain.tensors()) {
        for (std::size_t d = 0; d < tensor.dims.size(); ++d) {
            for (const ir::AccessTerm &term : tensor.dims[d].terms) {
                const std::size_t a = static_cast<std::size_t>(term.axis);
                const std::int64_t tile = p.tiles[a];
                const std::string loc =
                    tensor.name + " dim " + std::to_string(d);
                if (tile < 1) {
                    if (!tileReported[a]) {
                        tileReported[a] = true;
                        p.add(SafetyRule::SB01, loc,
                              "tile " + std::to_string(tile) + " on axis " +
                                  axisName(p.chain, term.axis) +
                                  " is degenerate; block windows are "
                                  "ill-formed");
                    }
                    continue;
                }
                const std::int64_t minExtent = p.domain.lo[a];
                if (tile > minExtent) {
                    bool ovf = false;
                    const std::int64_t reach =
                        checkedMul(term.coeff, tile - 1, ovf);
                    p.add(SafetyRule::SB01, loc,
                          "axis " + axisName(p.chain, term.axis) + " tile " +
                              std::to_string(tile) +
                              " exceeds the smallest admissible extent " +
                              std::to_string(minExtent) +
                              ": the first block's window reaches index " +
                              (ovf ? std::string("> int64")
                                   : std::to_string(reach)) +
                              " outside the dimension");
                }
                // tile within [1, min extent]: the clamped window's max
                // index cancels exactly against the dimension extent for
                // every shape in the domain — contained, no violation.
            }
        }
    }
}

/**
 * Exact full-tile footprint of @p tensor in bytes under the pass's
 * tiles, in 128-bit-checked arithmetic. Returns saturated int64 and
 * sets @p ovf on overflow.
 */
std::int64_t
checkedFootprintBytes(const Pass &p, const ir::TensorDecl &tensor, bool &ovf)
{
    std::int64_t elems = 1;
    for (const ir::AccessDim &dim : tensor.dims) {
        std::int64_t width = 1;
        for (const ir::AccessTerm &term : dim.terms) {
            const std::size_t a = static_cast<std::size_t>(term.axis);
            width = checkedAdd(
                width, checkedMul(term.coeff, p.tiles[a] - 1, ovf), ovf);
        }
        elems = checkedMul(elems, width, ovf);
    }
    return checkedMul(elems, tensor.elementSize, ovf);
}

/**
 * SB02: the per-worker budget must dominate the maximum live window
 * over the block grid. Footprint terms 1 + coeff*(T-1) are maximized
 * by full-tile blocks (edge blocks clamp to smaller windows), so the
 * symbolic max over the whole grid — for every shape in the domain —
 * is the sum of full-tile operand footprints of the widest operator.
 * This is the integer-exact cross-check of the Section V-B budget the
 * planner (PL07) and kernel-parameter rules (KP) evaluate in doubles.
 */
void
checkWorkspace(Pass &p, const SafetyOptions &options,
               std::int64_t &maxLiveBytes, bool &liveOverflow)
{
    maxLiveBytes = 0;
    liveOverflow = false;
    std::string widestOp;
    for (const ir::OpDecl &op : p.chain.ops()) {
        std::int64_t live = 0;
        bool ovf = false;
        for (const int tid : op.tensorIds) {
            live = checkedAdd(
                live,
                checkedFootprintBytes(
                    p, p.chain.tensors()[static_cast<std::size_t>(tid)], ovf),
                ovf);
        }
        if (ovf) {
            liveOverflow = true;
            p.add(SafetyRule::SB03, op.name,
                  "live-window size computation overflows int64");
            continue;
        }
        if (live > maxLiveBytes) {
            maxLiveBytes = live;
            widestOp = op.name;
        }
    }

    if (options.memCapacityBytes <= 0.0 || liveOverflow) {
        return; // unconstrained planning mode, or already an SB03
    }
    const double budget = model::clampedPerWorkerBudgetBytes(
        options.memCapacityBytes, options.topology, p.workers);
    if (static_cast<double>(maxLiveBytes) > budget) {
        p.add(SafetyRule::SB02, widestOp,
              "maximum live window " + std::to_string(maxLiveBytes) +
                  " bytes exceeds the per-worker budget " +
                  std::to_string(static_cast<std::int64_t>(budget)) +
                  " bytes at " + std::to_string(p.workers) + " worker(s)");
    }
}

/**
 * SB03: interval range analysis of the index arithmetic the lowered
 * nests and dispatch loops perform, at the domain's upper extents
 * (where every quantity is largest): linearized tensor element/byte
 * offsets, per-operator block-grid task counts, chunk strides through
 * the grain multiplications, and the aggregate per-worker workspace.
 */
void
checkOverflow(Pass &p, std::int64_t maxLiveBytes, bool liveOverflow)
{
    // Linearized element and byte offsets per tensor at upper extents.
    for (const ir::TensorDecl &tensor : p.chain.tensors()) {
        bool ovf = false;
        std::int64_t elems = 1;
        for (const ir::AccessDim &dim : tensor.dims) {
            std::int64_t extent = 1;
            for (const ir::AccessTerm &term : dim.terms) {
                const std::size_t a = static_cast<std::size_t>(term.axis);
                extent = checkedAdd(
                    extent,
                    checkedMul(term.coeff, p.domain.hi[a] - 1, ovf), ovf);
            }
            elems = checkedMul(elems, extent, ovf);
        }
        const std::int64_t bytes =
            checkedMul(elems, tensor.elementSize, ovf);
        (void)bytes;
        if (ovf) {
            p.add(SafetyRule::SB03, tensor.name,
                  "linearized element/byte offset overflows int64 at the "
                  "domain's upper extents");
        }
    }

    // Block-grid task counts and chunk arithmetic per operator.
    for (const ir::OpDecl &op : p.chain.ops()) {
        bool ovf = false;
        std::int64_t tasks = 1;
        for (AxisId a = 0; a < p.chain.numAxes(); ++a) {
            if (!op.usesLoop(a)) {
                continue;
            }
            const std::size_t i = static_cast<std::size_t>(a);
            const std::int64_t tile = std::max<std::int64_t>(1, p.tiles[i]);
            tasks =
                checkedMul(tasks, ceilDiv(p.domain.hi[i], tile), ovf);
        }
        if (ovf) {
            p.add(SafetyRule::SB03, op.name,
                  "block-grid task count overflows int64 at the domain's "
                  "upper extents");
        }
    }

    // Chunk stride grain*T per parallel axis (the dispatch loops
    // advance block indices in grain-sized strides).
    for (AxisId a = 0; a < p.chain.numAxes(); ++a) {
        const std::size_t i = static_cast<std::size_t>(a);
        if (p.grain[i] <= 1) {
            continue;
        }
        bool ovf = false;
        (void)checkedMul(p.grain[i], std::max<std::int64_t>(1, p.tiles[i]),
                         ovf);
        if (ovf) {
            p.add(SafetyRule::SB03, "axis " + axisName(p.chain, a),
                  "chunk stride grain*tile overflows int64");
        }
    }

    // Aggregate workspace: every worker keeps a private live window.
    if (!liveOverflow) {
        bool ovf = false;
        (void)checkedMul(maxLiveBytes, std::max(1, p.workers), ovf);
        if (ovf) {
            p.add(SafetyRule::SB03, "workspace",
                  "aggregate per-worker workspace allocation overflows "
                  "int64");
        }
    }
}

/**
 * SB04: shape-generic disjointness for every parallel-marked axis.
 * The dynamic test (dependence.cpp) proves step >= width at one
 * concrete shape; here the width is evaluated at the domain's *upper*
 * extents, where it is largest — step = coeff_a * T_a is shape-free,
 * so step >= width(hi) implies disjoint windows for every admissible
 * shape. Reduction facts (output map missing the axis) and softmax
 * row coupling are shape-independent, so a parallel mark on such an
 * axis is refuted outright.
 */
void
checkDisjointness(Pass &p)
{
    for (AxisId axis = 0; axis < p.chain.numAxes(); ++axis) {
        const std::size_t ai = static_cast<std::size_t>(axis);
        if (p.kinds[ai] != AxisConcurrency::Parallel) {
            continue; // reduction/sequential axes run serially
        }
        const std::int64_t tile = std::max<std::int64_t>(1, p.tiles[ai]);
        for (const ir::OpDecl &op : p.chain.ops()) {
            if (!op.usesLoop(axis)) {
                continue;
            }
            const ir::TensorDecl &out =
                p.chain.tensors()[static_cast<std::size_t>(
                    op.outputTensorId)];
            if (!out.usesAxis(axis)) {
                p.add(SafetyRule::SB04, op.name,
                      "axis " + axisName(p.chain, axis) +
                          " is marked parallel but " + op.name +
                          " accumulates into " + out.name +
                          ", whose access map does not use it (a "
                          "shape-independent reduction)");
                continue;
            }
            if (ceilDiv(p.domain.hi[ai], tile) <= 1) {
                continue; // one block over the whole domain
            }
            bool disjoint = false;
            for (const ir::AccessDim &dim : out.dims) {
                if (!dim.usesAxis(axis)) {
                    continue;
                }
                bool ovf = false;
                std::int64_t step = 0;
                std::int64_t width = 1;
                for (const ir::AccessTerm &term : dim.terms) {
                    const std::size_t ti =
                        static_cast<std::size_t>(term.axis);
                    if (term.axis == axis) {
                        step = checkedMul(term.coeff, tile, ovf);
                        width = checkedAdd(
                            width, checkedMul(term.coeff, tile - 1, ovf),
                            ovf);
                    } else {
                        width = checkedAdd(
                            width,
                            checkedMul(term.coeff, p.domain.hi[ti] - 1,
                                       ovf),
                            ovf);
                    }
                }
                if (!ovf && step >= width) {
                    disjoint = true;
                    break;
                }
            }
            if (disjoint) {
                continue;
            }
            if (out.kind == ir::TensorKind::Intermediate) {
                // Halo recompute: overlapping intermediate windows are
                // privatized per worker — redundant FLOPs, no race.
                continue;
            }
            p.add(SafetyRule::SB04, op.name,
                  "axis " + axisName(p.chain, axis) +
                      " is marked parallel but distinct blocks can write "
                      "overlapping " +
                      out.name + " indices for shapes up to the domain's "
                                 "upper extents");
        }
    }

    // Softmax row normalization couples every block of the row axes of
    // the intermediate's last access dimension for *every* shape.
    if (p.chain.intermediateEpilogue() == ir::Epilogue::Softmax) {
        for (const ir::TensorDecl &tensor : p.chain.tensors()) {
            if (tensor.kind != ir::TensorKind::Intermediate ||
                tensor.dims.empty()) {
                continue;
            }
            for (const ir::AccessTerm &term : tensor.dims.back().terms) {
                const std::size_t ti = static_cast<std::size_t>(term.axis);
                if (p.kinds[ti] == AxisConcurrency::Parallel) {
                    p.add(SafetyRule::SB04, tensor.name,
                          "axis " + axisName(p.chain, term.axis) +
                              " is marked parallel but the softmax row "
                              "normalization accumulates across its "
                              "blocks of " +
                              tensor.name);
                }
            }
        }
    }
}

} // namespace

SafetyAnalysis
analyzeSafety(const Chain &chain, const std::vector<AxisId> &perm,
              const std::vector<std::int64_t> &tiles,
              const std::vector<AxisConcurrency> &kinds, int workers,
              const std::vector<std::int64_t> &grain,
              const ShapeDomain &domain, const SafetyOptions &options)
{
    CHIMERA_CHECK(static_cast<int>(tiles.size()) == chain.numAxes(),
                  "static safety analysis needs one tile per axis");
    CHIMERA_CHECK(static_cast<int>(kinds.size()) == chain.numAxes(),
                  "static safety analysis needs one concurrency kind per "
                  "axis");
    CHIMERA_CHECK(static_cast<int>(domain.lo.size()) == chain.numAxes() &&
                      static_cast<int>(domain.hi.size()) == chain.numAxes(),
                  "shape domain arity mismatch");
    CHIMERA_CHECK(grain.empty() ||
                      static_cast<int>(grain.size()) == chain.numAxes(),
                  "grain vector must be empty or one entry per axis");

    const WallTimer total;
    SafetyAnalysis analysis;
    Pass pass{chain,
              tiles,
              kinds,
              domain,
              std::max(1, workers),
              grain.empty()
                  ? std::vector<std::int64_t>(
                        static_cast<std::size_t>(chain.numAxes()), 1)
                  : grain,
              analysis.violations};

    {
        const WallTimer t;
        checkBounds(pass);
        analysis.ruleSeconds[0] = t.seconds();
    }
    std::int64_t maxLiveBytes = 0;
    bool liveOverflow = false;
    {
        const WallTimer t;
        checkWorkspace(pass, options, maxLiveBytes, liveOverflow);
        analysis.ruleSeconds[1] = t.seconds();
    }
    {
        const WallTimer t;
        checkOverflow(pass, maxLiveBytes, liveOverflow);
        analysis.ruleSeconds[2] = t.seconds();
    }
    {
        const WallTimer t;
        checkDisjointness(pass);
        analysis.ruleSeconds[3] = t.seconds();
    }

    SafetyCertificate &cert = analysis.certificate;
    cert.domain = domain.summary(chain);
    cert.rules = "sb01,sb02,sb03,sb04";
    cert.digest = safetyDigest(chain, perm, tiles, std::max(1, workers),
                               pass.grain, cert.domain, cert.rules);
    cert.certified = analysis.violations.empty();
    analysis.totalSeconds = total.seconds();
    return analysis;
}

} // namespace chimera::analysis
