#pragma once

/**
 * @file
 * Block-level dynamic race checker: shadow memory over one output
 * tensor that tags every element with the parallel task (block) that
 * first claimed it and reports conflicting claimants.
 *
 * The executors claim the element ranges each parallel task writes
 * (ExecOptions::raceCheck); two claims of the same element by distinct
 * tasks within one parallel phase are a conflict — a plan whose
 * declared-parallel axes carry a dependence. Detection is keyed by the
 * deterministic task index, not by thread identity or interleaving, so
 * a mis-declared plan is caught even when the executor runs on a
 * single thread (which is how chimera-check --race runs it: a truly
 * racy schedule must not be executed multithreaded just to prove it
 * races).
 *
 * A phase is one parallelFor region; beginPhase() resets the shadow
 * between phases (they are separated by a barrier, so cross-phase
 * writes to the same element are ordered, not racing). Conflicts
 * accumulate across phases. beginPhase must not run concurrently with
 * claims; claims from concurrent workers are safe (atomic CAS per
 * element).
 *
 * This is a validation tool: claiming is O(elements written), so keep
 * it off hot paths and on test- or check-sized workloads.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/aligned.hpp"

namespace chimera::analysis {

/** One recorded write-write conflict. */
struct RaceConflict
{
    std::string phase; ///< label of the parallel phase
    std::int64_t element = 0; ///< flat element index in the output
    std::int64_t firstTask = 0; ///< task that claimed the element first
    std::int64_t secondTask = 0; ///< conflicting later claimant
};

/** Shadow-memory conflict detector for one output tensor. */
class RaceChecker
{
  public:
    /** Detail cap: counting is exact, recording stops here. */
    static constexpr std::size_t kMaxRecorded = 16;

    explicit RaceChecker(std::int64_t numElements);

    /** Starts a new parallel phase: resets the shadow, keeps conflicts. */
    void beginPhase(std::string label);

    /**
     * Marks elements [begin, end) as written by @p task. Any element
     * already owned by a different task in this phase counts (and is
     * recorded, up to the cap) as a conflict. Thread-safe.
     */
    void claimRange(std::int64_t task, std::int64_t begin,
                    std::int64_t end);

    std::int64_t numElements() const { return numElements_; }

    /** Exact total conflicting-element count across all phases. */
    std::int64_t conflictCount() const
    {
        return conflictCount_.load(std::memory_order_relaxed);
    }

    bool hasConflicts() const { return conflictCount() > 0; }

    /** Recorded conflict details (capped at kMaxRecorded). */
    std::vector<RaceConflict> conflicts() const;

    /** Multi-line human-readable conflict report; "" when clean. */
    std::string report() const;

  private:
    std::int64_t numElements_;
    /**
     * Owner per element: task index + 1; 0 = unclaimed this phase.
     * Cache-line aligned so concurrent claims from different workers
     * start on a fresh line instead of false-sharing with whatever the
     * allocator placed next to the shadow array.
     */
    AlignedBuffer<std::atomic<std::int64_t>> owner_;
    std::atomic<std::int64_t> conflictCount_{0};
    mutable std::mutex mutex_;
    std::string phase_ = "<unnamed>";
    std::vector<RaceConflict> recorded_;
};

} // namespace chimera::analysis
