#pragma once

/**
 * @file
 * Static plan-safety analysis: a symbolic abstract interpreter over the
 * chain's affine access maps composed with a plan's tile/order/chunk
 * schedule. Where the RC01 shadow-memory race checker and the PL/KP
 * verifiers validate a plan for the *concrete shape* it runs on, this
 * pass proves four properties once, for every shape a domain admits:
 *
 *  - SB01 (bounds): every block read/write window is contained in its
 *    tensor's extents — halo-recompute windows included. Block windows
 *    clamp at the tensor edge exactly like the executors do, so the
 *    proof reduces to exact affine cancellation: with 1 <= T_a <=
 *    min-extent(a) for every axis of a dimension, the maximal accessed
 *    index equals the dimension extent minus one for *all* admissible
 *    shapes (the symbolic difference cancels to the constant -1).
 *  - SB02 (workspace): the per-worker capacity budget dominates the
 *    maximum live window over the whole block grid. Full-tile blocks
 *    maximize every footprint term, so the symbolic max over the grid
 *    is the sum of full-tile operand footprints per operator, evaluated
 *    with exact (overflow-checked) integer arithmetic and compared
 *    against the same Section V-B budget the KP rules spot-check.
 *  - SB03 (overflow): every index computation in the lowered nests —
 *    linearized element offsets, byte offsets, block-grid task counts,
 *    chunk arithmetic through the grain multiplications, and the
 *    aggregate per-worker workspace allocation — stays within int64 at
 *    the domain's upper extents, established by interval analysis in
 *    128-bit arithmetic.
 *  - SB04 (race freedom): every parallel-marked axis has symbolically
 *    disjoint output windows for all shapes in the domain — the
 *    shape-independent promotion of the dependence analyzer's
 *    per-shape disjointness test (coeff_a*T_a >= width, with the width
 *    evaluated at the domain's *upper* extents where it is largest,
 *    and the same intermediate halo-recompute exemption and softmax
 *    row-coupling rules as analyzeConcurrency).
 *
 * A clean analysis yields a SafetyCertificate that the planner attaches
 * to the winning plan, the v2 plan document serializes as a `safety:`
 * line (policed by PL14), and serve::PlannerGate requires before
 * serving — which is what lets the daemon keep dynamic race checking
 * off the hot path.
 *
 * The default domain is "concrete": every axis pinned to its chain
 * extent, matching the dynamic checkers. Widening an axis to [1, max]
 * certifies a whole family at once — e.g. the serve batcher's derived
 * b-axis plans for any batch size up to max.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "ir/chain.hpp"
#include "model/multilevel.hpp"

namespace chimera::analysis {

/**
 * Closed int64 interval with saturation-on-overflow tracking. All
 * arithmetic runs in 128 bits; a result outside int64 saturates and
 * sets overflow, which SB03 treats as a violation.
 */
struct SymRange
{
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    bool overflow = false;

    static SymRange point(std::int64_t v) { return {v, v, false}; }
};

SymRange addRanges(const SymRange &a, const SymRange &b);
SymRange mulRanges(const SymRange &a, const SymRange &b);

/**
 * Shape domain: per-axis closed extent intervals [lo, hi]. concrete()
 * pins every axis to its chain extent; widen() relaxes one axis to
 * [1, max]. A widened axis must still admit the chain's concrete
 * extent (lo <= extent <= hi) so the plan's own shape is in-domain.
 */
struct ShapeDomain
{
    std::vector<std::int64_t> lo;
    std::vector<std::int64_t> hi;

    static ShapeDomain concrete(const ir::Chain &chain);

    /** Relaxes @p axisName to [1, maxExtent]; throws on bad input. */
    void widen(const ir::Chain &chain, const std::string &axisName,
               std::int64_t maxExtent);

    /** True when every axis is pinned to its concrete extent. */
    bool isConcrete(const ir::Chain &chain) const;

    /** "concrete" or "b:1..4096,m:1..8192" (widened axes only). */
    std::string summary(const ir::Chain &chain) const;
};

/**
 * Parses a domain summary produced by ShapeDomain::summary (the
 * `domain=` token of a `safety:` plan-document line). Throws
 * chimera::Error naming @p context on malformed specs or unknown axes.
 */
ShapeDomain parseShapeDomain(const ir::Chain &chain, const std::string &spec,
                             const std::string &context);

/** The SB rule family (see file comment). */
enum class SafetyRule
{
    SB01, ///< block window escapes its tensor's extents
    SB02, ///< live window exceeds the per-worker capacity budget
    SB03, ///< index arithmetic can overflow int64
    SB04, ///< parallel-marked axis lacks a disjointness proof
};

/** "SB01".."SB04". */
const char *safetyRuleName(SafetyRule rule);

/** Number of SB rules (timing arrays are indexed by rule). */
inline constexpr int kNumSafetyRules = 4;

/** One refuted property: which rule, where, and why. */
struct SafetyViolation
{
    SafetyRule rule = SafetyRule::SB01;
    std::string location;
    std::string message;
};

/**
 * Shape-generic safety certificate carried by a certified
 * ExecutionPlan and serialized as the v2 `safety:` document line.
 * The digest binds chain signature, schedule (order/tiles/threads/
 * grain), domain and rule set; PL14 polices the binding on load.
 */
struct SafetyCertificate
{
    /** True when the analyzer proved all four rules over the domain. */
    bool certified = false;

    /** ShapeDomain::summary() of the certified domain. */
    std::string domain = "concrete";

    /** Comma-joined lower-case rule ids, e.g. "sb01,sb02,sb03,sb04". */
    std::string rules;

    /** fnv1a64Hex over signature + schedule + domain + rules. */
    std::string digest;
};

/** Knobs for the analyzer (budget source mirrors the planner). */
struct SafetyOptions
{
    /**
     * Memory capacity in bytes for SB02; <= 0 skips the capacity
     * check (matching the planner's unconstrained mode).
     */
    double memCapacityBytes = 0.0;

    /**
     * Optional machine topology: with workers > 1 the SB02 budget is
     * clamped to the tightest shared-level per-worker share, exactly
     * like the thread-aware planner's tile budget.
     */
    model::MachineModel topology;
};

/** Analyzer result: violations plus the certificate (if clean). */
struct SafetyAnalysis
{
    /** Empty iff the plan certified. */
    std::vector<SafetyViolation> violations;

    /** certified == violations.empty(); always carries domain/digest. */
    SafetyCertificate certificate;

    /** Wall seconds spent per rule (SB01..SB04), for overhead reports. */
    double ruleSeconds[kNumSafetyRules] = {0.0, 0.0, 0.0, 0.0};

    /** Total analyzer wall seconds. */
    double totalSeconds = 0.0;

    /** "window of E dim 0 ..." one-line rendering of all violations. */
    std::string renderViolations() const;
};

/**
 * Runs the four SB rules over @p chain under block tiling @p tiles,
 * declared per-axis concurrency @p kinds (arity == chain.numAxes();
 * pass ConcurrencyTable::kinds() or a plan's table), @p workers
 * planned threads and per-axis chunk @p grain (empty means grain 1).
 * @p perm is the block execution order (outermost first); it does not
 * influence any of the four properties but is bound into the digest so
 * a certificate cannot be replayed onto a reordered plan.
 */
SafetyAnalysis analyzeSafety(const ir::Chain &chain,
                             const std::vector<ir::AxisId> &perm,
                             const std::vector<std::int64_t> &tiles,
                             const std::vector<AxisConcurrency> &kinds,
                             int workers,
                             const std::vector<std::int64_t> &grain,
                             const ShapeDomain &domain,
                             const SafetyOptions &options);

/**
 * The certificate digest: FNV-1a over the chain signature, the
 * schedule (order, tiles, threads, grain) and the domain/rule strings.
 * Recomputed by the PL14 validator; any drift rejects the document.
 */
std::string safetyDigest(const ir::Chain &chain,
                         const std::vector<ir::AxisId> &perm,
                         const std::vector<std::int64_t> &tiles,
                         int workers,
                         const std::vector<std::int64_t> &grain,
                         const std::string &domain,
                         const std::string &rules);

} // namespace chimera::analysis
