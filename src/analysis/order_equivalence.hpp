#pragma once

/**
 * @file
 * Symbolic order-equivalence and dominance analysis over candidate
 * block execution orders (the planner's I! search space).
 *
 * The planner's cost of a block order is Algorithm 1's data-movement
 * volume, which decomposes per (operator, tensor) into
 *
 *     footprint(tiles) * multiplier(order, tiles)
 *
 * where the multiplier is a product of block counts of the operator's
 * own loop axes (src/model/data_movement.cpp). Two structural facts
 * make sub-factorial search possible without giving up exactness:
 *
 *  - **Symmetry**: the multiplier of (op, tensor) depends on the order
 *    only through the *relative* order of that operator's loop axes.
 *    Axes that can never have more than one block (fixed to their full
 *    extent, or extent 1) are skipped by the model entirely. Hence two
 *    permutations whose induced subsequences over every operator's
 *    multi-block-capable loops agree have *syntactically identical*
 *    symbolic DV expressions — independent axes may be renamed/moved
 *    freely between them — and the tile solver, which consults the
 *    order only through that expression, returns bitwise-identical
 *    tiles, volume and memory usage for both. One representative per
 *    class is solved; the rest are pruned exactly.
 *
 *  - **Dominance**: under the shared memory-capacity budget not every
 *    axis can hold its full extent on chip, so some axes have a
 *    capacity-certified minimum block count > 1. Those minimums give a
 *    sound per-order lower bound on the achievable volume (every
 *    multiplier factor is bounded below by the minimum block count,
 *    every footprint by the minimum-candidate footprint). An order
 *    whose lower bound already exceeds the best achieved volume cannot
 *    win the (volume, memory) argmin and is pruned without a tile
 *    solve.
 *
 * Exactness rests on volumes being exact integers: footprints and
 * block counts are int64, and their products/sums stay below 2^53 for
 * every supported chain, so the doubles carrying them are exact and
 * the planner's +-0.5 tie band implements a true lexicographic
 * (volume, memUsage, enumeration index) order. The analyzer never
 * merges orders across *axis renamings* (e.g. swapping two same-extent
 * axes): the tile solver's ascending-AxisId tie-breaking is not
 * equivariant under renaming, so such a merge would not be bitwise
 * exact. See DESIGN.md ("Order-equivalence analysis").
 *
 * The lower bound supports incremental prefix evaluation: walking
 * candidate orders in enumeration order, only the suffix diverging
 * from the previous order is re-evaluated (partial bounds are monotone
 * as the prefix grows, so shared prefixes share state).
 */

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/chain.hpp"
#include "model/data_movement.hpp"
#include "solver/tile_solver.hpp"

namespace chimera::analysis {

/** Planner search-pruning mode (PlannerOptions::prune). */
enum class PruneMode
{
    None, ///< Exhaustive: solve every enumerated order.
    Symmetry, ///< Exact: solve one representative per symmetry class.
    Dominance, ///< Exact: symmetry + lower-bound dominance pruning.
    Beam, ///< Inexact: solve the beamWidth best-bound orders only;
          ///< records a certified optimality-gap bound.
};

/** Canonical lowercase name ("none", "symmetry", "dominance", "beam"). */
const char *pruneModeName(PruneMode mode);

/** Inverse of pruneModeName; nullopt for unknown names. */
std::optional<PruneMode> parsePruneMode(std::string_view name);

/**
 * Where the candidates of one planner search went. Attached to the
 * winning ExecutionPlan, serialized as the v2 `search:` document line,
 * and policed by verify::verifySearchStats (PL15). The counts satisfy
 *
 *     enumerated == filtered + symmetryPruned + dominancePruned
 *                 + beamPruned + solved
 *
 * and, unless truncated, enumerated == (#reorderable axes)!.
 */
struct SearchStats
{
    /** False on hand-assembled/fixed-order plans (no `search:` line). */
    bool present = false;

    PruneMode mode = PruneMode::None;

    /** Candidate orders materialized (after the maxPermutations cap). */
    std::int64_t enumerated = 0;

    /** True when maxPermutations cut the enumeration short — the plan
     * may be suboptimal and cached consumers can see that. */
    bool truncated = false;

    /** Orders dropped by the executable-order filter. */
    std::int64_t filtered = 0;

    /** Orders pruned as symmetry-class duplicates (exact). */
    std::int64_t symmetryPruned = 0;

    /** Orders pruned by the dominance lower bound (exact). */
    std::int64_t dominancePruned = 0;

    /** Orders dropped by beam selection (inexact, gap-certified). */
    std::int64_t beamPruned = 0;

    /** Orders actually handed to the tile solver. */
    std::int64_t solved = 0;

    /**
     * Certified optimality-gap bound, bytes: the true optimum's volume
     * is >= the plan's volume minus this. 0 for the exact modes; for
     * beam it is max(0, bestVolume - min lower bound over unsolved
     * orders).
     */
    std::int64_t gapBoundBytes = 0;

    /** fnv1a64Hex binding of chain + schedule + mode + counts + gap. */
    std::string digest;
};

/**
 * Tamper-evident digest over everything the `search:` line claims,
 * bound to the chain structure and the winning schedule. Recomputed by
 * the PL15 verifier; a mismatch means the line was forged or replayed
 * onto another plan.
 */
std::string searchDigest(const ir::Chain &chain,
                         const std::vector<ir::AxisId> &perm,
                         const std::vector<std::int64_t> &tiles,
                         const SearchStats &stats);

/**
 * The static analyzer behind symmetry and dominance pruning. Built
 * once per planner search from the chain, the solver constraints the
 * search runs under (pinned axes and executability pins applied) and
 * the solver's effective capacity budget; all per-axis candidate
 * lattices and capacity-certified minimum block counts are derived in
 * the constructor, so the per-order queries are cheap and allocation
 * free on the hot path.
 */
class OrderAnalyzer
{
  public:
    OrderAnalyzer(const ir::Chain &chain,
                  const solver::TileConstraints &constraints,
                  double memCapacityBytes,
                  const model::ModelOptions &model);

    /**
     * Canonical symmetry-class key of @p perm: the concatenation, per
     * operator, of the induced subsequence of the order restricted to
     * that operator's key axes. Two orders with equal keys have
     * syntactically identical DV expressions and identical
     * executability, so the solver returns bitwise-identical solutions
     * for both.
     */
    std::string symmetryKey(const std::vector<ir::AxisId> &perm) const;

    /**
     * Sound lower bound (bytes) on the volume achievable by any
     * feasible tile vector under @p perm. From-scratch evaluation;
     * exact integer arithmetic carried in doubles.
     */
    double lowerBound(const std::vector<ir::AxisId> &perm) const;

    /**
     * Same bound, sharing work with the previously evaluated order:
     * only the suffix after the longest common prefix is re-evaluated.
     * Call in enumeration order for the intended savings; any call
     * order returns the same values as lowerBound().
     */
    double lowerBoundIncremental(const std::vector<ir::AxisId> &perm);

    /**
     * Capacity-certified minimum block count of @p axis: every tile
     * vector fitting the budget has at least this many blocks of it.
     */
    std::int64_t minBlocks(ir::AxisId axis) const;

    /** True when no candidate tile gives @p axis more than one block
     * (the model then never sees it; excluded from symmetry keys). */
    bool alwaysSingleBlock(ir::AxisId axis) const;

  private:
    struct Term
    {
        double minFootprintBytes = 0.0; ///< footprint at minimum tiles
    };

    struct TermState
    {
        double prodAll = 1.0; ///< product over blocked axes placed
        double prodBound = 1.0; ///< prodAll at the last tensor-axis placement
    };

    const ir::Chain &chain_;
    int numAxes_ = 0;

    /** Per axis: capacity-certified minimum block count (>= 1). */
    std::vector<std::int64_t> minBlocks_;

    /** Per axis: participates in symmetry keys. */
    std::vector<char> inKey_;

    /** Per op: usesLoop bitmap (numOps x numAxes). */
    std::vector<std::vector<char>> opUses_;

    /** Perm-dependent lower-bound terms (counted (op, tensor) pairs
     * with at least one tensor-using blocked axis). */
    std::vector<Term> terms_;

    /** Per axis: list of (term index, axis indexes the tensor). */
    std::vector<std::vector<std::pair<int, bool>>> axisTerms_;

    /** Sum of minimum footprints of terms with no blocked tensor axis
     * (their multiplier bound is 1 — perm-independent). */
    double constBase_ = 0.0;

    /** Incremental state: the prefix shared with the last evaluation
     * and the per-level term-state snapshots along it. */
    std::vector<ir::AxisId> prefix_;
    std::vector<std::vector<TermState>> prefixStates_;

    mutable std::vector<int> posScratch_;
};

} // namespace chimera::analysis
