#include "analysis/race_checker.hpp"

#include <new>
#include <sstream>

#include "support/error.hpp"

namespace chimera::analysis {

RaceChecker::RaceChecker(std::int64_t numElements)
    : numElements_(numElements)
{
    CHIMERA_CHECK(numElements > 0,
                  "race checker needs a positive element count");
    owner_ = allocateAligned<std::atomic<std::int64_t>>(
        static_cast<std::size_t>(numElements));
    // allocateAligned hands back uninitialized storage; atomics must be
    // constructed before first use (they are trivially destructible, so
    // the aligned deleter's plain free is fine).
    for (std::int64_t i = 0; i < numElements_; ++i) {
        new (&owner_[static_cast<std::size_t>(i)])
            std::atomic<std::int64_t>(0);
    }
}

void
RaceChecker::beginPhase(std::string label)
{
    for (std::int64_t i = 0; i < numElements_; ++i) {
        owner_[static_cast<std::size_t>(i)].store(
            0, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    phase_ = std::move(label);
}

void
RaceChecker::claimRange(std::int64_t task, std::int64_t begin,
                        std::int64_t end)
{
    CHIMERA_CHECK(begin >= 0 && end <= numElements_ && begin <= end,
                  "race checker claim outside the shadowed output");
    const std::int64_t tag = task + 1;
    for (std::int64_t i = begin; i < end; ++i) {
        std::int64_t expected = 0;
        auto &owner = owner_[static_cast<std::size_t>(i)];
        if (owner.compare_exchange_strong(expected, tag,
                                          std::memory_order_relaxed) ||
            expected == tag) {
            continue;
        }
        conflictCount_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex_);
        if (recorded_.size() < kMaxRecorded) {
            recorded_.push_back(
                RaceConflict{phase_, i, expected - 1, task});
        }
    }
}

std::vector<RaceConflict>
RaceChecker::conflicts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

std::string
RaceChecker::report() const
{
    const std::int64_t total = conflictCount();
    if (total == 0) {
        return "";
    }
    std::ostringstream out;
    out << total << " element(s) written by conflicting parallel tasks";
    std::lock_guard<std::mutex> lock(mutex_);
    for (const RaceConflict &c : recorded_) {
        out << "\n  phase " << c.phase << ": element " << c.element
            << " claimed by task " << c.firstTask << " and task "
            << c.secondTask;
    }
    if (static_cast<std::size_t>(total) > recorded_.size()) {
        out << "\n  (first " << recorded_.size() << " shown)";
    }
    return out.str();
}

} // namespace chimera::analysis
