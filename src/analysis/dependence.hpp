#pragma once

/**
 * @file
 * Dependence analysis over the chain's affine access maps: proves, per
 * loop axis and per block tiling, whether distinct blocks along the
 * axis may execute concurrently.
 *
 * The executors used to hand-pick their "dependence-free" block loops;
 * a refactor of an access map in src/ir could silently turn one of
 * those loops into a reduction and corrupt results only at
 * CHIMERA_THREADS>1. This pass derives the answer from the same
 * per-tensor access maps the analytical model already carries (§IV-B):
 * every axis is classified as
 *
 *  - Parallel: for every operator using the axis, distinct blocks
 *    write disjoint index ranges of the operator's output tensor (the
 *    write-write conflict test over block index deltas below), so the
 *    blocks can be distributed across workers freely;
 *  - Reduction: some operator accumulates into an output whose access
 *    map does not use the axis — every block writes the same output
 *    elements, so the blocks must run serially (ascending, to keep the
 *    floating-point accumulation order, and therefore the output bits,
 *    independent of the thread count);
 *  - Sequential: distinct blocks write overlapping indices of a chain
 *    *output* (e.g. a halo-carrying spatial axis on an output tensor),
 *    which not even an accumulation-order argument can save.
 *
 * Conflict test: an access dimension of the output evaluates
 * sum_t coeff_t * i_t. Within one block of axis a, the dimension spans
 * a window of width
 *     1 + coeff_a*(T_a - 1) + sum_{t != a} coeff_t*(extent_t - 1)
 * (other axes conservatively contribute their full extents: serial
 * loops really do sweep them inside one task, and for co-occupying
 * parallel axes the bound degenerates to the mixed-radix injectivity
 * condition). Advancing the block index of a shifts the window by
 * coeff_a * T_a, so blocks are disjoint along the dimension iff
 *     coeff_a * T_a >= width.
 * One disjoint dimension suffices: the written index tuples differ.
 *
 * Overlapping writes to an *intermediate* tensor are exempt: the fused
 * executors privatize intermediate regions per worker and recompute
 * the halo (§VI-B), so the overlap costs FLOPs, not correctness.
 *
 * A softmax epilogue adds a row-sum accumulation across the
 * intermediate's last access dimension; axes in that dimension are
 * forced down to at least Reduction and flagged epilogueInduced.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "ir/chain.hpp"

namespace chimera::analysis {

/** Concurrency class of one loop axis under a given block tiling. */
enum class AxisConcurrency
{
    Parallel, ///< distinct blocks write disjoint output indices
    Reduction, ///< blocks accumulate; serial ascending order required
    Sequential, ///< blocks overlap on a chain output; no reordering
};

/** Lower-case name used in plan documents ("parallel", ...). */
const char *concurrencyName(AxisConcurrency kind);

/**
 * Parses a plan-document concurrency kind token. Throws chimera::Error
 * naming @p context when @p name is not a known kind.
 */
AxisConcurrency concurrencyFromName(const std::string &name,
                                    const std::string &context);

/** Classification of one axis plus the justification. */
struct AxisClassification
{
    AxisConcurrency kind = AxisConcurrency::Parallel;

    /** True when a softmax row accumulation forced the class down. */
    bool epilogueInduced = false;

    /** Human-readable justification from the decisive operator. */
    std::string reason;
};

/** Per-axis concurrency table for one (chain, tiles) schedule. */
struct ConcurrencyTable
{
    /** Indexed by ir::AxisId; always chain.numAxes() entries. */
    std::vector<AxisClassification> axes;

    AxisConcurrency kindOf(ir::AxisId axis) const;
    bool isParallel(ir::AxisId axis) const;

    /** Just the kinds, for embedding into an ExecutionPlan. */
    std::vector<AxisConcurrency> kinds() const;

    /** "b=parallel m=parallel k=reduction ..." in axis order. */
    std::string summary(const ir::Chain &chain) const;
};

/**
 * Classifies every axis of @p chain under block tiling @p tiles (one
 * tile per axis, each within [1, extent]; the planner, the strict plan
 * deserializer and the verifier all validate tiles first). Axes used
 * by no operator classify Parallel trivially.
 */
ConcurrencyTable analyzeConcurrency(const ir::Chain &chain,
                                    const std::vector<std::int64_t> &tiles);

} // namespace chimera::analysis
