#include "analysis/order_equivalence.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "support/str.hpp"

namespace chimera::analysis {

using ir::AxisId;
using ir::Chain;

const char *
pruneModeName(PruneMode mode)
{
    switch (mode) {
    case PruneMode::None:
        return "none";
    case PruneMode::Symmetry:
        return "symmetry";
    case PruneMode::Dominance:
        return "dominance";
    case PruneMode::Beam:
        return "beam";
    }
    return "none";
}

std::optional<PruneMode>
parsePruneMode(std::string_view name)
{
    if (name == "none") {
        return PruneMode::None;
    }
    if (name == "symmetry") {
        return PruneMode::Symmetry;
    }
    if (name == "dominance") {
        return PruneMode::Dominance;
    }
    if (name == "beam") {
        return PruneMode::Beam;
    }
    return std::nullopt;
}

std::string
searchDigest(const Chain &chain, const std::vector<AxisId> &perm,
             const std::vector<std::int64_t> &tiles,
             const SearchStats &stats)
{
    // Mirrors safetyDigest (static_safety.cpp): one canonical blob over
    // everything the `search:` line claims, bound to the chain
    // structure and the winning schedule so a line cannot be replayed
    // onto another plan.
    std::string blob = ir::chainSignature(chain);
    blob += "|order=";
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (i != 0) {
            blob += ",";
        }
        blob += std::to_string(perm[i]);
    }
    blob += "|tiles=";
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        if (i != 0) {
            blob += ",";
        }
        blob += std::to_string(tiles[i]);
    }
    blob += "|mode=";
    blob += pruneModeName(stats.mode);
    blob += "|enumerated=" + std::to_string(stats.enumerated);
    blob += "|truncated=";
    blob += stats.truncated ? "1" : "0";
    blob += "|filtered=" + std::to_string(stats.filtered);
    blob += "|symmetry=" + std::to_string(stats.symmetryPruned);
    blob += "|dominance=" + std::to_string(stats.dominancePruned);
    blob += "|beam=" + std::to_string(stats.beamPruned);
    blob += "|solved=" + std::to_string(stats.solved);
    blob += "|gap=" + std::to_string(stats.gapBoundBytes);
    return fnv1a64Hex(blob);
}

OrderAnalyzer::OrderAnalyzer(const Chain &chain,
                             const solver::TileConstraints &constraints,
                             double memCapacityBytes,
                             const model::ModelOptions &model)
    : chain_(chain), numAxes_(chain.numAxes())
{
    const auto n = static_cast<std::size_t>(numAxes_);
    minBlocks_.assign(n, 1);
    inKey_.assign(n, 1);
    axisTerms_.resize(n);
    posScratch_.assign(n, 0);

    // Per-axis candidate lattices under the search's constraints, plus
    // the all-minimum tile vector (the least feasible footprint).
    std::vector<std::vector<std::int64_t>> candidates;
    candidates.reserve(n);
    std::vector<std::int64_t> minTiles(n, 1);
    for (AxisId a = 0; a < numAxes_; ++a) {
        candidates.push_back(
            solver::axisTileCandidates(chain, a, constraints));
        minTiles[static_cast<std::size_t>(a)] =
            candidates[static_cast<std::size_t>(a)].front();
    }

    // Identity order for the capacity probes: memory usage does not
    // depend on the order, only on the tiles.
    std::vector<AxisId> identity(n);
    for (AxisId a = 0; a < numAxes_; ++a) {
        identity[static_cast<std::size_t>(a)] = a;
    }

    for (AxisId a = 0; a < numAxes_; ++a) {
        const auto ai = static_cast<std::size_t>(a);
        const std::int64_t extent = chain.axes()[ai].extent;

        // alwaysSingleBlock: even the smallest candidate covers the
        // whole extent, so the model never counts this axis.
        const bool alwaysSingle =
            ceilDiv(extent, candidates[ai].front()) == 1;

        // The executability filter's notion of a free axis (planner's
        // filterTiles: fixed axes at their fix, everything else fully
        // blocked). An axis invisible to both the model and the filter
        // can be excluded from symmetry keys without changing either
        // the DV expression or the filter decision.
        std::int64_t filterTile = 1;
        if (const auto it = constraints.fixed.find(a);
            it != constraints.fixed.end()) {
            filterTile = std::min(it->second, extent);
        }
        const bool filterFree = chain.axes()[ai].reorderable &&
                                extent > 1 &&
                                ceilDiv(extent, filterTile) > 1;
        inKey_[ai] = (alwaysSingle && !filterFree) ? 0 : 1;

        // Capacity-certified maximum candidate: the largest candidate
        // c such that (a = c, everything else minimal) still fits the
        // budget. Memory usage is monotone in every tile, so any
        // feasible tile vector has tiles[a] <= that candidate, which
        // certifies minBlocks_[a] blocks for every feasible solve.
        std::int64_t cappedMax = candidates[ai].front();
        if (memCapacityBytes > 0.0) {
            for (std::size_t ci = candidates[ai].size(); ci-- > 0;) {
                std::vector<std::int64_t> probe = minTiles;
                probe[ai] = candidates[ai][ci];
                const model::DataMovement dm = model::computeDataMovement(
                    chain, identity, probe, model);
                if (static_cast<double>(dm.memUsageBytes) <=
                    memCapacityBytes) {
                    cappedMax = candidates[ai][ci];
                    break;
                }
            }
        } else {
            cappedMax = candidates[ai].back();
        }
        minBlocks_[ai] = std::max<std::int64_t>(
            1, ceilDiv(extent, std::max<std::int64_t>(1, cappedMax)));
    }

    // Per-op loop bitmaps and the per-(op, tensor) lower-bound terms.
    opUses_.resize(chain.ops().size());
    for (std::size_t o = 0; o < chain.ops().size(); ++o) {
        opUses_[o].assign(n, 0);
        for (AxisId a : chain.ops()[o].loops) {
            opUses_[o][static_cast<std::size_t>(a)] = 1;
        }
    }
    for (const ir::OpDecl &op : chain.ops()) {
        for (int t : op.tensorIds) {
            const ir::TensorDecl &tensor =
                chain.tensors()[static_cast<std::size_t>(t)];
            const bool counted =
                model.intermediatesAreIO ||
                tensor.kind != ir::TensorKind::Intermediate;
            if (!counted) {
                continue;
            }
            const double minFootBytes =
                static_cast<double>(tensor.footprintElems(minTiles)) *
                tensor.elementSize;
            // Blocked loop axes of this operator, split by whether they
            // index the tensor. With no blocked tensor axis the
            // multiplier bound is 1 for every order.
            std::vector<std::pair<AxisId, bool>> blocked;
            bool anyTensorAxis = false;
            for (AxisId a : op.loops) {
                if (minBlocks_[static_cast<std::size_t>(a)] <= 1) {
                    continue;
                }
                const bool usesA = tensor.usesAxis(a);
                anyTensorAxis = anyTensorAxis || usesA;
                blocked.emplace_back(a, usesA);
            }
            if (!anyTensorAxis) {
                constBase_ += minFootBytes;
                continue;
            }
            const int termIdx = static_cast<int>(terms_.size());
            terms_.push_back(Term{minFootBytes});
            for (const auto &[a, usesA] : blocked) {
                axisTerms_[static_cast<std::size_t>(a)].emplace_back(
                    termIdx, usesA);
            }
        }
    }
}

std::int64_t
OrderAnalyzer::minBlocks(AxisId axis) const
{
    return minBlocks_[static_cast<std::size_t>(axis)];
}

bool
OrderAnalyzer::alwaysSingleBlock(AxisId axis) const
{
    return inKey_[static_cast<std::size_t>(axis)] == 0;
}

std::string
OrderAnalyzer::symmetryKey(const std::vector<AxisId> &perm) const
{
    // One character per (op, key axis) occurrence keeps the key compact
    // enough for hash-set probing on the hot enumeration path; chains
    // have far fewer axes than the printable range used here.
    std::string key;
    key.reserve(opUses_.size() * perm.size());
    for (const std::vector<char> &uses : opUses_) {
        for (const AxisId a : perm) {
            const auto ai = static_cast<std::size_t>(a);
            if (uses[ai] != 0 && inKey_[ai] != 0) {
                key += static_cast<char>('A' + a);
            }
        }
        key += '|';
    }
    return key;
}

double
OrderAnalyzer::lowerBound(const std::vector<AxisId> &perm) const
{
    CHIMERA_ASSERT(static_cast<int>(perm.size()) == numAxes_,
                   "order arity does not match the chain");
    std::vector<int> &pos = posScratch_;
    for (std::size_t i = 0; i < perm.size(); ++i) {
        pos[static_cast<std::size_t>(perm[i])] = static_cast<int>(i);
    }
    // Pass 1: per term, the deepest position of a tensor-using blocked
    // axis (the multiplier's certified boundary). Pass 2: multiply the
    // minimum block counts of every blocked axis at or outside it.
    std::vector<int> boundary(terms_.size(), -1);
    for (AxisId a = 0; a < numAxes_; ++a) {
        const auto ai = static_cast<std::size_t>(a);
        for (const auto &[ti, usesA] : axisTerms_[ai]) {
            if (usesA) {
                boundary[static_cast<std::size_t>(ti)] = std::max(
                    boundary[static_cast<std::size_t>(ti)], pos[ai]);
            }
        }
    }
    std::vector<double> prod(terms_.size(), 1.0);
    for (AxisId a = 0; a < numAxes_; ++a) {
        const auto ai = static_cast<std::size_t>(a);
        for (const auto &[ti, usesA] : axisTerms_[ai]) {
            if (pos[ai] <= boundary[static_cast<std::size_t>(ti)]) {
                prod[static_cast<std::size_t>(ti)] *=
                    static_cast<double>(minBlocks_[ai]);
            }
        }
    }
    double lb = constBase_;
    for (std::size_t ti = 0; ti < terms_.size(); ++ti) {
        lb += terms_[ti].minFootprintBytes * prod[ti];
    }
    return lb;
}

double
OrderAnalyzer::lowerBoundIncremental(const std::vector<AxisId> &perm)
{
    CHIMERA_ASSERT(static_cast<int>(perm.size()) == numAxes_,
                   "order arity does not match the chain");
    std::size_t common = 0;
    while (common < prefix_.size() && common < perm.size() &&
           prefix_[common] == perm[common]) {
        ++common;
    }
    prefix_.resize(common);
    prefixStates_.resize(common);
    for (std::size_t d = common; d < perm.size(); ++d) {
        std::vector<TermState> state =
            d == 0 ? std::vector<TermState>(terms_.size())
                   : prefixStates_[d - 1];
        const AxisId a = perm[d];
        const auto ai = static_cast<std::size_t>(a);
        for (const auto &[ti, usesA] : axisTerms_[ai]) {
            TermState &st = state[static_cast<std::size_t>(ti)];
            st.prodAll *= static_cast<double>(minBlocks_[ai]);
            if (usesA) {
                // The certified boundary moved to this depth: every
                // blocked axis placed so far now counts.
                st.prodBound = st.prodAll;
            }
        }
        prefix_.push_back(a);
        prefixStates_.push_back(std::move(state));
    }
    double lb = constBase_;
    if (prefixStates_.empty()) {
        for (const Term &term : terms_) {
            lb += term.minFootprintBytes;
        }
        return lb;
    }
    const std::vector<TermState> &last = prefixStates_.back();
    for (std::size_t ti = 0; ti < terms_.size(); ++ti) {
        lb += terms_[ti].minFootprintBytes * last[ti].prodBound;
    }
    return lb;
}

} // namespace chimera::analysis
