#include "analysis/dependence.hpp"

#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace chimera::analysis {

using ir::AxisId;
using ir::Chain;

namespace {

/** Severity order for combining per-operator classes over the chain. */
int
rankOf(AxisConcurrency kind)
{
    switch (kind) {
      case AxisConcurrency::Parallel: return 0;
      case AxisConcurrency::Reduction: return 1;
      case AxisConcurrency::Sequential: return 2;
    }
    return 2;
}

/**
 * Write-write conflict test for axis @p axis on one access dimension of
 * an output tensor: true when advancing the block index of the axis
 * shifts the written window by at least the window's width.
 */
bool
blocksDisjointAlongDim(const Chain &chain, const ir::AccessDim &dim,
                       AxisId axis, const std::vector<std::int64_t> &tiles)
{
    std::int64_t step = 0;
    std::int64_t width = 1;
    for (const ir::AccessTerm &term : dim.terms) {
        if (term.axis == axis) {
            step = term.coeff * tiles[static_cast<std::size_t>(axis)];
            width +=
                term.coeff * (tiles[static_cast<std::size_t>(axis)] - 1);
        } else {
            width += term.coeff *
                     (chain.axes()[static_cast<std::size_t>(term.axis)]
                          .extent -
                      1);
        }
    }
    return step >= width;
}

/** Per-operator classification of @p axis (the op must use the axis). */
AxisClassification
classifyForOp(const Chain &chain, const ir::OpDecl &op, AxisId axis,
              const std::vector<std::int64_t> &tiles)
{
    const std::string &axisName =
        chain.axes()[static_cast<std::size_t>(axis)].name;
    const ir::TensorDecl &out =
        chain.tensors()[static_cast<std::size_t>(op.outputTensorId)];

    AxisClassification cls;
    if (!out.usesAxis(axis)) {
        cls.kind = AxisConcurrency::Reduction;
        cls.reason = op.name + " accumulates into " + out.name +
                     ", whose access map does not use " + axisName;
        return cls;
    }

    const std::int64_t extent =
        chain.axes()[static_cast<std::size_t>(axis)].extent;
    const std::int64_t blocks =
        ceilDiv(extent, tiles[static_cast<std::size_t>(axis)]);
    if (blocks <= 1) {
        cls.kind = AxisConcurrency::Parallel;
        cls.reason = "single block covers the full extent of " + axisName;
        return cls;
    }

    for (const ir::AccessDim &dim : out.dims) {
        if (dim.usesAxis(axis) &&
            blocksDisjointAlongDim(chain, dim, axis, tiles)) {
            cls.kind = AxisConcurrency::Parallel;
            cls.reason = "distinct " + axisName + " blocks write disjoint " +
                         out.name + " indices";
            return cls;
        }
    }
    if (out.kind == ir::TensorKind::Intermediate) {
        // The fused executors privatize intermediate regions per worker
        // and recompute the halo, so the overlap is redundant work, not
        // a write conflict.
        cls.kind = AxisConcurrency::Parallel;
        cls.reason = "overlapping " + out.name +
                     " halo is recomputed per block (intermediate)";
        return cls;
    }
    cls.kind = AxisConcurrency::Sequential;
    cls.reason = "distinct " + axisName + " blocks write overlapping " +
                 out.name + " indices";
    return cls;
}

} // namespace

const char *
concurrencyName(AxisConcurrency kind)
{
    switch (kind) {
      case AxisConcurrency::Parallel: return "parallel";
      case AxisConcurrency::Reduction: return "reduction";
      case AxisConcurrency::Sequential: return "sequential";
    }
    return "?";
}

AxisConcurrency
concurrencyFromName(const std::string &name, const std::string &context)
{
    if (name == "parallel") {
        return AxisConcurrency::Parallel;
    }
    if (name == "reduction") {
        return AxisConcurrency::Reduction;
    }
    if (name == "sequential") {
        return AxisConcurrency::Sequential;
    }
    throw Error(context + ": unknown concurrency kind \"" + name +
                "\" (expected parallel, reduction or sequential)");
}

AxisConcurrency
ConcurrencyTable::kindOf(AxisId axis) const
{
    return axes[static_cast<std::size_t>(axis)].kind;
}

bool
ConcurrencyTable::isParallel(AxisId axis) const
{
    return kindOf(axis) == AxisConcurrency::Parallel;
}

std::vector<AxisConcurrency>
ConcurrencyTable::kinds() const
{
    std::vector<AxisConcurrency> out;
    out.reserve(axes.size());
    for (const AxisClassification &cls : axes) {
        out.push_back(cls.kind);
    }
    return out;
}

std::string
ConcurrencyTable::summary(const Chain &chain) const
{
    std::string out;
    for (std::size_t a = 0; a < axes.size(); ++a) {
        if (!out.empty()) {
            out += " ";
        }
        out += chain.axes()[a].name;
        out += "=";
        out += concurrencyName(axes[a].kind);
    }
    return out;
}

ConcurrencyTable
analyzeConcurrency(const Chain &chain,
                   const std::vector<std::int64_t> &tiles)
{
    CHIMERA_CHECK(static_cast<int>(tiles.size()) == chain.numAxes(),
                  "concurrency analysis needs one tile per axis");

    ConcurrencyTable table;
    table.axes.resize(static_cast<std::size_t>(chain.numAxes()));
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        AxisClassification &cls =
            table.axes[static_cast<std::size_t>(a)];
        cls.kind = AxisConcurrency::Parallel;
        cls.reason = "axis is not used by any operator";
        bool used = false;
        for (const ir::OpDecl &op : chain.ops()) {
            if (!op.usesLoop(a)) {
                continue;
            }
            const AxisClassification opCls =
                classifyForOp(chain, op, a, tiles);
            if (!used || rankOf(opCls.kind) > rankOf(cls.kind)) {
                cls.kind = opCls.kind;
                cls.reason = opCls.reason;
            }
            used = true;
        }
    }

    // A softmax epilogue accumulates a row sum across the intermediate's
    // last access dimension: every block of an axis in that dimension
    // contributes to the same per-row totals, so those axes cannot run
    // in parallel even though the operator-level write sets are disjoint.
    if (chain.intermediateEpilogue() == ir::Epilogue::Softmax) {
        for (const ir::TensorDecl &tensor : chain.tensors()) {
            if (tensor.kind != ir::TensorKind::Intermediate ||
                tensor.dims.empty()) {
                continue;
            }
            const ir::AccessDim &rowDim = tensor.dims.back();
            for (const ir::AccessTerm &term : rowDim.terms) {
                AxisClassification &cls =
                    table.axes[static_cast<std::size_t>(term.axis)];
                cls.epilogueInduced = true;
                if (cls.kind == AxisConcurrency::Parallel) {
                    cls.kind = AxisConcurrency::Reduction;
                    cls.reason = "softmax row normalization accumulates "
                                 "across " +
                                 chain.axes()[static_cast<std::size_t>(
                                                  term.axis)]
                                     .name +
                                 " blocks of " + tensor.name;
                }
            }
        }
    }
    return table;
}

} // namespace chimera::analysis
