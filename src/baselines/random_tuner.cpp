#include "baselines/random_tuner.hpp"

#include <algorithm>

#include "model/data_movement.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace chimera::baselines {

using ir::AxisId;
using ir::Chain;

TunerResult
randomSearchPlan(const Chain &chain, const TunerOptions &options,
                 const MeasureFn &measure)
{
    CHIMERA_CHECK(options.trials >= 1, "tuner needs at least one trial");
    CHIMERA_CHECK(options.memCapacityBytes > 0.0,
                  "tuner needs a positive memory capacity");
    WallTimer timer;
    Rng rng(options.seed);

    // Candidate tile lattice per axis (pinned axes stay at full extent).
    solver::TileConstraints constraints = options.constraints;
    for (AxisId pinned : chain.pinnedAxes()) {
        constraints.fixed.emplace(
            pinned, chain.axes()[static_cast<std::size_t>(pinned)].extent);
    }
    std::vector<std::vector<std::int64_t>> candidates;
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        candidates.push_back(
            solver::axisTileCandidates(chain, a, constraints));
    }

    const std::vector<AxisId> reorderable = chain.reorderableAxes();
    TunerResult result;
    bool haveBest = false;

    for (int trial = 0; trial < options.trials; ++trial) {
        // Random order: shuffle the reorderable prefix.
        std::vector<AxisId> perm = reorderable;
        for (std::size_t i = perm.size(); i > 1; --i) {
            std::swap(perm[i - 1],
                      perm[static_cast<std::size_t>(rng.below(i))]);
        }
        for (AxisId pinned : chain.pinnedAxes()) {
            perm.push_back(pinned);
        }
        if (options.onlyExecutableOrders &&
            !model::isExecutableOrder(chain, perm)) {
            continue;
        }

        // Random tiles from the lattice.
        std::vector<std::int64_t> tiles(
            static_cast<std::size_t>(chain.numAxes()));
        for (AxisId a = 0; a < chain.numAxes(); ++a) {
            const auto &cands = candidates[static_cast<std::size_t>(a)];
            tiles[static_cast<std::size_t>(a)] =
                cands[static_cast<std::size_t>(rng.below(cands.size()))];
        }

        const model::DataMovement dm =
            model::computeDataMovement(chain, perm, tiles);
        if (static_cast<double>(dm.memUsageBytes) >
            options.memCapacityBytes) {
            continue; // would overflow on-chip memory: skip, don't run
        }

        plan::ExecutionPlan candidate;
        candidate.perm = perm;
        candidate.tiles = tiles;
        candidate.predictedVolumeBytes = dm.volumeBytes;
        candidate.memUsageBytes = dm.memUsageBytes;
        const double seconds = measure(candidate);
        ++result.measuredTrials;
        if (!haveBest || seconds < result.bestSeconds) {
            haveBest = true;
            result.bestSeconds = seconds;
            result.plan = candidate;
        }
    }
    CHIMERA_CHECK(haveBest, "random search found no feasible candidate");
    result.tuneSeconds = timer.seconds();
    return result;
}

} // namespace chimera::baselines
