#pragma once

/**
 * @file
 * Profiling-driven random search over the schedule space: the proxy for
 * tuning compilers (Ansor) and the paper's ablation configuration with
 * the cost model disabled ("randomly samples 100 candidate tiling
 * factors for each block order and chooses the best one by evaluating
 * them on hardware", §VI-E).
 *
 * Unlike Chimera's analytical planner, every candidate is *measured* by
 * a caller-supplied function (usually a wall-clock run of the fused
 * executor), so the search cost scales with trials — the optimization
 * overhead the paper compares in §VI-E.
 */

#include <functional>

#include "ir/chain.hpp"
#include "plan/planner.hpp"
#include "support/rng.hpp"

namespace chimera::baselines {

/** Measures a candidate plan; returns its cost (seconds, lower wins). */
using MeasureFn = std::function<double(const plan::ExecutionPlan &)>;

/** Result of a random-search tuning session. */
struct TunerResult
{
    plan::ExecutionPlan plan;
    double bestSeconds = 0.0;

    /** Wall time of the whole search, including measurements. */
    double tuneSeconds = 0.0;

    /** Candidates that passed the memory constraint and were measured. */
    int measuredTrials = 0;
};

/** Tuner knobs. */
struct TunerOptions
{
    double memCapacityBytes = 0.0;
    int trials = 100;
    std::uint64_t seed = 1;

    /** Constraints applied when sampling tile sizes. */
    solver::TileConstraints constraints;

    /** Restrict sampling to executable orders (see the planner). */
    bool onlyExecutableOrders = true;
};

/**
 * Samples random (order, tiles) candidates under the memory constraint
 * and returns the best measured plan. Throws Error when no feasible
 * candidate was found within the trial budget.
 */
TunerResult randomSearchPlan(const ir::Chain &chain,
                             const TunerOptions &options,
                             const MeasureFn &measure);

} // namespace chimera::baselines
